"""Tests for the prefetch-admission policies."""

import numpy as np
import pytest

from repro.caching.policies import (
    AccessThresholdPolicy,
    CacheAllBlockPolicy,
    CombinedPolicy,
    InsertAtPositionPolicy,
    NoPrefetchPolicy,
    ShadowAdmissionPolicy,
    make_policy,
)


class TestSimplePolicies:
    def test_no_prefetch_rejects_everything(self):
        policy = NoPrefetchPolicy()
        assert policy.admit(5) is None

    def test_cache_all_admits_at_top(self):
        assert CacheAllBlockPolicy().admit(5) == pytest.approx(0.0)

    def test_insert_at_position(self):
        policy = InsertAtPositionPolicy(position=0.7)
        assert policy.admit(5) == pytest.approx(0.7)

    def test_insert_position_validated(self):
        with pytest.raises(ValueError):
            InsertAtPositionPolicy(position=2.0)


class TestShadowAdmissionPolicy:
    def test_admits_only_shadow_residents(self):
        policy = ShadowAdmissionPolicy(real_cache_size=4, multiplier=1.0)
        assert policy.admit(1) is None
        policy.record_access(1)
        assert policy.admit(1) == pytest.approx(0.0)

    def test_reset_clears_shadow(self):
        policy = ShadowAdmissionPolicy(real_cache_size=4)
        policy.record_access(1)
        policy.reset()
        assert policy.admit(1) is None


class TestCombinedPolicy:
    def test_shadow_hit_goes_to_top_miss_to_position(self):
        policy = CombinedPolicy(real_cache_size=4, position=0.5, multiplier=1.0)
        assert policy.admit(1) == pytest.approx(0.5)
        policy.record_access(1)
        assert policy.admit(1) == pytest.approx(0.0)


class TestAccessThresholdPolicy:
    def test_admits_above_threshold_only(self):
        counts = np.array([0, 5, 50])
        policy = AccessThresholdPolicy(counts, threshold=5)
        assert policy.admit(0) is None
        assert policy.admit(1) is None      # strictly greater than t
        assert policy.admit(2) == pytest.approx(0.0)

    def test_out_of_range_vector_rejected(self):
        policy = AccessThresholdPolicy(np.array([10]), threshold=1)
        assert policy.admit(5) is None

    def test_threshold_zero_admits_any_accessed_vector(self):
        policy = AccessThresholdPolicy(np.array([0, 1]), threshold=0)
        assert policy.admit(0) is None
        assert policy.admit(1) == pytest.approx(0.0)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            AccessThresholdPolicy(np.array([1]), threshold=-1)

    def test_2d_counts_rejected(self):
        with pytest.raises(ValueError):
            AccessThresholdPolicy(np.zeros((2, 2)), threshold=1)


class TestPolicyFactory:
    def test_known_policies(self):
        assert isinstance(make_policy("no-prefetch"), NoPrefetchPolicy)
        assert isinstance(make_policy("cache-all-block"), CacheAllBlockPolicy)
        assert isinstance(
            make_policy("insert-at-position", position=0.3), InsertAtPositionPolicy
        )
        assert isinstance(
            make_policy("shadow-admission", real_cache_size=10), ShadowAdmissionPolicy
        )
        assert isinstance(
            make_policy("access-threshold", access_counts=np.array([1]), threshold=1),
            AccessThresholdPolicy,
        )

    def test_unknown_policy(self):
        with pytest.raises(KeyError):
            make_policy("does-not-exist")
