"""Tests for stack distances and hit-rate curves (paper Figure 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caching.stack_distance import (
    COLD_MISS,
    HitRateCurve,
    compute_stack_distances,
    compute_stack_distances_chunked,
    hit_rate_curve,
)
from repro.workloads.trace import Trace


def naive_lru_hits(stream, cache_size):
    """Reference LRU simulation used as an oracle."""
    stack = []
    hits = 0
    for key in stream:
        if key in stack:
            index = stack.index(key)
            if index < cache_size:
                hits += 1
            stack.pop(index)
        stack.insert(0, key)
    return hits


class TestStackDistances:
    def test_known_sequence(self):
        distances = compute_stack_distances([1, 2, 1, 3, 2])
        # 1:cold, 2:cold, 1:distance 2, 3:cold, 2:distance 3
        assert distances.tolist() == [COLD_MISS, COLD_MISS, 2, COLD_MISS, 3]

    def test_repeated_access_distance_one(self):
        distances = compute_stack_distances([7, 7, 7])
        assert distances.tolist() == [COLD_MISS, 1, 1]

    def test_empty_stream(self):
        assert compute_stack_distances([]).size == 0

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            compute_stack_distances(np.zeros((2, 2), dtype=int))

    @given(
        stream=st.lists(st.integers(min_value=0, max_value=15), max_size=120),
        cache_size=st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_naive_lru(self, stream, cache_size):
        """Hits derived from stack distances must equal a real LRU simulation."""
        distances = compute_stack_distances(stream)
        finite = distances[distances != COLD_MISS]
        hits_from_distances = int((finite <= cache_size).sum())
        assert hits_from_distances == naive_lru_hits(stream, cache_size)


class TestChunkedStackDistances:
    """The chunked array-native kernel must match the reference bit for bit."""

    @given(
        stream=st.lists(st.integers(min_value=0, max_value=25), max_size=200),
        chunk_size=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_bit_identical_to_reference(self, stream, chunk_size):
        reference = compute_stack_distances(stream)
        chunked = compute_stack_distances_chunked(stream, chunk_size=chunk_size)
        assert np.array_equal(reference, chunked)

    def test_randomized_skewed_streams(self):
        for seed in range(5):
            rng = np.random.default_rng(seed)
            stream = (rng.integers(0, 500, size=2000) ** 2 % 500).astype(np.int64)
            assert np.array_equal(
                compute_stack_distances(stream),
                compute_stack_distances_chunked(stream),
            )

    def test_empty_and_single(self):
        assert compute_stack_distances_chunked([]).size == 0
        assert compute_stack_distances_chunked([4]).tolist() == [COLD_MISS]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            compute_stack_distances_chunked(np.zeros((2, 2), dtype=int))
        with pytest.raises(ValueError):
            compute_stack_distances_chunked([1, 2], chunk_size=0)


class TestHitRateCurve:
    def test_monotone_non_decreasing(self, eval_trace):
        curve = hit_rate_curve(eval_trace, cache_sizes=[10, 50, 100, 500, 1000])
        assert (np.diff(curve.hit_rates) >= 0).all()

    def test_bounded_by_one_minus_compulsory(self, eval_trace):
        curve = hit_rate_curve(eval_trace, cache_sizes=[eval_trace.num_vectors])
        compulsory = eval_trace.unique_vectors().size / eval_trace.num_lookups
        assert curve.hit_rates[-1] == pytest.approx(1 - compulsory, abs=1e-9)

    def test_accepts_raw_stream(self):
        curve = hit_rate_curve(np.array([1, 2, 1, 2, 1]), cache_sizes=[1, 2, 3])
        assert curve.total_lookups == 5
        assert curve.hit_rates[-1] == pytest.approx(3 / 5)

    def test_empty_trace(self):
        curve = hit_rate_curve(Trace([], num_vectors=4), cache_sizes=[1, 2])
        assert (curve.hit_rates == 0).all()

    def test_default_sizes_geometric(self, eval_trace):
        curve = hit_rate_curve(eval_trace, num_points=10)
        assert curve.cache_sizes.size <= 10
        assert (np.diff(curve.cache_sizes) > 0).all()

    def test_interpolation_and_hits(self):
        curve = HitRateCurve(np.array([10, 20]), np.array([0.2, 0.4]), total_lookups=100)
        assert curve.hit_rate_at(15) == pytest.approx(0.3)
        assert curve.hit_rate_at(0) == pytest.approx(0.0)
        assert curve.hit_rate_at(100) == pytest.approx(0.4)  # clamps right
        assert curve.hits_at(20) == pytest.approx(40)

    def test_validation(self):
        with pytest.raises(ValueError):
            HitRateCurve(np.array([2, 1]), np.array([0.1, 0.2]), 10)
        with pytest.raises(ValueError):
            HitRateCurve(np.array([1]), np.array([0.1, 0.2]), 10)

    def test_skewed_trace_has_useful_small_cache(self, eval_trace):
        # A cache holding 20% of the distinct vectors should already serve a
        # sizeable fraction of lookups on a skewed workload.
        unique = eval_trace.unique_vectors().size
        curve = hit_rate_curve(eval_trace, cache_sizes=[max(1, unique // 5)])
        assert curve.hit_rates[0] > 0.2
