"""Unit tests for the paper's Table 1 specs and their scaled variants."""

import pytest

from repro.workloads.tables_spec import (
    PAPER_TABLE_SPECS,
    PAPER_VECTOR_BYTES,
    PAPER_VECTORS_PER_BLOCK,
    TableSpec,
    scaled_table_specs,
)


class TestPaperSpecs:
    def test_eight_tables(self):
        assert len(PAPER_TABLE_SPECS) == 8

    def test_lookup_shares_roughly_sum_to_one(self):
        total = sum(spec.lookup_share for spec in PAPER_TABLE_SPECS.values())
        assert total == pytest.approx(1.0, abs=0.1)

    def test_table2_matches_paper_row(self):
        spec = PAPER_TABLE_SPECS["table2"]
        assert spec.num_vectors == 10_000_000
        assert spec.avg_lookups_per_query == pytest.approx(92.75)
        assert spec.lookup_share == pytest.approx(0.2514)
        assert spec.compulsory_miss_rate == pytest.approx(0.0219)

    def test_table8_has_highest_compulsory_miss_rate(self):
        rates = {name: s.compulsory_miss_rate for name, s in PAPER_TABLE_SPECS.items()}
        assert max(rates, key=rates.get) == "table8"

    def test_vector_geometry(self):
        assert PAPER_VECTORS_PER_BLOCK == 32
        spec = PAPER_TABLE_SPECS["table1"]
        assert spec.vector_bytes == PAPER_VECTOR_BYTES
        assert spec.table_bytes == spec.num_vectors * PAPER_VECTOR_BYTES


class TestScaling:
    def test_scaled_preserves_intensive_stats(self):
        specs = scaled_table_specs(1 / 500)
        for name, scaled in specs.items():
            original = PAPER_TABLE_SPECS[name]
            assert scaled.avg_lookups_per_query == original.avg_lookups_per_query
            assert scaled.compulsory_miss_rate == original.compulsory_miss_rate
            assert scaled.num_vectors == pytest.approx(
                original.num_vectors / 500, rel=0.01
            )

    def test_scaled_subset(self):
        specs = scaled_table_specs(1 / 1000, names=["table1", "table8"])
        assert set(specs) == {"table1", "table8"}

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            scaled_table_specs(1 / 1000, names=["table9"])

    def test_scale_never_below_one_block(self):
        specs = scaled_table_specs(1e-9)
        assert all(s.num_vectors >= PAPER_VECTORS_PER_BLOCK for s in specs.values())


class TestTableSpecValidation:
    def test_invalid_share_rejected(self):
        with pytest.raises(ValueError):
            TableSpec(
                name="bad",
                num_vectors=100,
                avg_lookups_per_query=10,
                lookup_share=1.5,
                compulsory_miss_rate=0.1,
            )

    def test_invalid_num_vectors_rejected(self):
        with pytest.raises(ValueError):
            TableSpec(
                name="bad",
                num_vectors=0,
                avg_lookups_per_query=10,
                lookup_share=0.5,
                compulsory_miss_rate=0.1,
            )
