"""The consistent-hash ring: determinism, replica placement, balance."""

import numpy as np
import pytest

from repro.cluster.ring import ConsistentHashRing, stable_hash64


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash64("t0:block3") == stable_hash64("t0:block3")

    def test_64_bit_range(self):
        for key in ("a", "b", "table:block123", ""):
            assert 0 <= stable_hash64(key) < 2**64

    def test_known_value_pinned(self):
        # blake2b is platform-independent; this pin guards placement
        # stability across releases (moving blocks would cold every cache).
        assert stable_hash64("node0#vnode0") == int.from_bytes(
            __import__("hashlib").blake2b(b"node0#vnode0", digest_size=8).digest(),
            "big",
        )


class TestRingConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ConsistentHashRing([])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            ConsistentHashRing(["a", "b", "a"])

    def test_rejects_zero_vnodes(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(["a"], virtual_nodes=0)

    def test_len_is_physical_nodes(self):
        assert len(ConsistentHashRing(["a", "b", "c"])) == 3


class TestReplicaPlacement:
    def test_deterministic(self):
        names = [f"node{i}" for i in range(5)]
        a = ConsistentHashRing(names)
        b = ConsistentHashRing(names)
        for key in ("t:block0", "t:block1", "u:block7"):
            assert a.replicas_for(key, 3) == b.replicas_for(key, 3)

    def test_replicas_distinct(self):
        ring = ConsistentHashRing([f"node{i}" for i in range(4)])
        for block in range(50):
            replicas = ring.replicas_for(f"t:block{block}", 3)
            assert len(replicas) == len(set(replicas)) == 3

    def test_replication_clamped_to_cluster(self):
        ring = ConsistentHashRing(["a", "b"])
        assert sorted(ring.replicas_for("k", 5)) == [0, 1]

    def test_primary_prefix_property(self):
        # R=1 placement is the first entry of R=2 placement: raising the
        # replication factor must not move any primary.
        ring = ConsistentHashRing([f"node{i}" for i in range(4)])
        for block in range(50):
            key = f"t:block{block}"
            assert ring.replicas_for(key, 2)[0] == ring.replicas_for(key, 1)[0]


class TestBlockOwners:
    def test_shape_and_dtype(self):
        ring = ConsistentHashRing([f"node{i}" for i in range(4)])
        owners = ring.block_owners("t", 32, 2)
        assert owners.shape == (32, 2)
        assert owners.dtype == np.int64

    def test_single_node_all_zero(self):
        ring = ConsistentHashRing(["only"])
        owners = ring.block_owners("t", 16, 1)
        assert np.all(owners == 0)

    def test_rows_match_replicas_for(self):
        ring = ConsistentHashRing([f"node{i}" for i in range(3)])
        owners = ring.block_owners("t", 10, 2)
        for block in range(10):
            assert owners[block].tolist() == ring.replicas_for(f"t:block{block}", 2)

    def test_ownership_shares_sum_to_slots(self):
        ring = ConsistentHashRing([f"node{i}" for i in range(4)])
        shares = ring.ownership_shares("t", 100, 2)
        assert sum(shares.values()) == 100 * 2

    def test_virtual_nodes_spread_load(self):
        # With enough vnodes every node owns a nontrivial share — the whole
        # point of virtual nodes (a bare 4-point ring can starve a node).
        ring = ConsistentHashRing([f"node{i}" for i in range(4)], virtual_nodes=64)
        shares = ring.ownership_shares("t", 400, 1)
        assert min(shares.values()) > 0
        assert max(shares.values()) < 400  # nobody owns everything
