"""Tests for the miniature-cache threshold tuner (paper Table 2 / Figure 14)."""

import numpy as np
import pytest

from repro.caching.miniature import MiniatureCacheTuner, ThresholdSelection
from repro.workloads.characterization import access_counts


class TestMiniatureCacheTuner:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MiniatureCacheTuner(sampling_rate=0.0)
        with pytest.raises(ValueError):
            MiniatureCacheTuner(sampling_rate=1.5)
        with pytest.raises(ValueError):
            MiniatureCacheTuner(thresholds=[])

    def test_selection_structure(self, train_trace, eval_trace, shp_layout):
        counts = access_counts(train_trace)
        tuner = MiniatureCacheTuner(sampling_rate=0.2, seed=0, thresholds=(0, 50, 200))
        selection = tuner.select_threshold(eval_trace, shp_layout, counts, cache_size=400)
        assert isinstance(selection, ThresholdSelection)
        assert selection.threshold in (0, 50, 200)
        assert set(selection.gains) == {0, 50, 200}
        assert selection.miniature_cache_size == int(round(400 * 0.2))
        assert selection.baseline_stats is not None

    def test_full_rate_uses_real_cache_size(self, train_trace, eval_trace, shp_layout):
        counts = access_counts(train_trace)
        tuner = MiniatureCacheTuner(sampling_rate=1.0, thresholds=(0, 100))
        selection = tuner.select_threshold(eval_trace, shp_layout, counts, cache_size=300)
        assert selection.miniature_cache_size == 300

    def test_picks_best_gain(self, train_trace, eval_trace, shp_layout):
        counts = access_counts(train_trace)
        tuner = MiniatureCacheTuner(sampling_rate=0.3, seed=1, thresholds=(0, 50, 100, 400))
        selection = tuner.select_threshold(eval_trace, shp_layout, counts, cache_size=300)
        assert selection.gains[selection.threshold] == pytest.approx(
            max(selection.gains.values())
        )

    def test_sampled_selection_close_to_full(self, train_trace, eval_trace, shp_layout):
        """The miniature simulation should pick a threshold whose *full-cache*
        gain is close to the best full-cache gain (the paper's Table 2 claim)."""
        counts = access_counts(train_trace)
        thresholds = (0, 50, 100, 400)
        oracle = MiniatureCacheTuner(sampling_rate=1.0, thresholds=thresholds)
        sampled = MiniatureCacheTuner(sampling_rate=0.25, seed=3, thresholds=thresholds)
        cache_size = 400
        full = oracle.select_threshold(eval_trace, shp_layout, counts, cache_size)
        mini = sampled.select_threshold(eval_trace, shp_layout, counts, cache_size)
        best_gain = max(full.gains.values())
        chosen_gain_at_full = full.gains[mini.threshold]
        # Allow a modest degradation versus the oracle's best threshold.
        assert chosen_gain_at_full >= best_gain - 0.35

    def test_multiple_cache_sizes(self, train_trace, eval_trace, shp_layout):
        counts = access_counts(train_trace)
        tuner = MiniatureCacheTuner(sampling_rate=0.25, thresholds=(0, 100))
        selections = tuner.select_thresholds_for_sizes(
            eval_trace, shp_layout, counts, cache_sizes=[200, 400]
        )
        assert set(selections) == {200, 400}

    def test_invalid_cache_size(self, train_trace, eval_trace, shp_layout):
        counts = access_counts(train_trace)
        tuner = MiniatureCacheTuner(sampling_rate=0.5)
        with pytest.raises(ValueError):
            tuner.select_threshold(eval_trace, shp_layout, counts, cache_size=0)
