"""Tests for the placement algorithms (identity, frequency, K-means, SHP)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embeddings.table import EmbeddingTable
from repro.nvm.block import BlockLayout
from repro.partitioning import (
    FrequencyPartitioner,
    IdentityPartitioner,
    KMeansPartitioner,
    RecursiveKMeansPartitioner,
    SHPPartitioner,
)
from repro.partitioning.kmeans import kmeans_cluster, order_by_labels
from repro.workloads.characterization import access_counts
from repro.workloads.trace import Trace


def assert_is_permutation(order: np.ndarray, num_vectors: int):
    assert order.shape == (num_vectors,)
    assert np.array_equal(np.sort(order), np.arange(num_vectors))


class TestIdentityPartitioner:
    def test_identity_order(self):
        result = IdentityPartitioner().partition(10)
        np.testing.assert_array_equal(result.order, np.arange(10))
        assert result.runtime_seconds >= 0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            IdentityPartitioner().partition(0)


class TestFrequencyPartitioner:
    def test_orders_by_descending_count(self):
        trace = Trace([[2, 2, 3], [3], [3]], num_vectors=5)
        result = FrequencyPartitioner().partition(5, trace=trace)
        assert result.order[0] == 3  # most accessed first
        assert result.order[1] == 2
        assert_is_permutation(result.order, 5)

    def test_requires_trace(self):
        with pytest.raises(ValueError):
            FrequencyPartitioner().partition(5)

    def test_never_accessed_keep_id_order(self):
        trace = Trace([[4]], num_vectors=6)
        result = FrequencyPartitioner().partition(6, trace=trace)
        assert result.order.tolist() == [4, 0, 1, 2, 3, 5]


class TestKMeansClustering:
    def test_labels_and_centroids_shapes(self, rng):
        points = rng.normal(size=(200, 8)).astype(np.float32)
        labels, centroids, inertia = kmeans_cluster(points, 4, seed=0)
        assert labels.shape == (200,)
        assert centroids.shape == (4, 8)
        assert inertia >= 0

    def test_separable_clusters_recovered(self, rng):
        a = rng.normal(loc=0, size=(100, 4))
        b = rng.normal(loc=10, size=(100, 4))
        points = np.vstack([a, b]).astype(np.float32)
        labels, _, _ = kmeans_cluster(points, 2, seed=1)
        # All of `a` in one cluster, all of `b` in the other.
        assert len(set(labels[:100])) == 1
        assert len(set(labels[100:])) == 1
        assert labels[0] != labels[150]

    def test_single_cluster(self, rng):
        points = rng.normal(size=(10, 3)).astype(np.float32)
        labels, centroids, _ = kmeans_cluster(points, 1)
        assert (labels == 0).all()
        np.testing.assert_allclose(centroids[0], points.mean(axis=0), atol=1e-5)

    def test_more_clusters_than_points_clamped(self, rng):
        points = rng.normal(size=(5, 2)).astype(np.float32)
        labels, centroids, _ = kmeans_cluster(points, 50)
        assert centroids.shape[0] == 5

    def test_order_by_labels_groups_contiguously(self):
        labels = np.array([1, 0, 1, 0, 2])
        order = order_by_labels(labels)
        grouped = labels[order]
        # Once a label changes it never reappears.
        changes = np.flatnonzero(np.diff(grouped) != 0)
        assert len(changes) == len(np.unique(labels)) - 1

    def test_invalid_values_shape(self):
        with pytest.raises(ValueError):
            kmeans_cluster(np.zeros(10), 2)


class TestKMeansPartitioner:
    def test_produces_permutation(self, small_spec, embedding_table):
        partitioner = KMeansPartitioner(num_clusters=16, num_iterations=5, seed=0)
        result = partitioner.partition(small_spec.num_vectors, table=embedding_table)
        assert_is_permutation(result.order, small_spec.num_vectors)
        assert result.details["num_clusters"] == 16

    def test_requires_table(self):
        with pytest.raises(ValueError):
            KMeansPartitioner(num_clusters=4).partition(100)

    def test_size_mismatch_rejected(self, embedding_table):
        with pytest.raises(ValueError):
            KMeansPartitioner(num_clusters=4).partition(
                embedding_table.num_vectors + 1, table=embedding_table
            )


class TestRecursiveKMeansPartitioner:
    def test_produces_permutation(self, small_spec, embedding_table):
        partitioner = RecursiveKMeansPartitioner(
            num_top_clusters=8, num_sub_clusters=64, num_iterations=4, seed=0
        )
        result = partitioner.partition(small_spec.num_vectors, table=embedding_table)
        assert_is_permutation(result.order, small_spec.num_vectors)
        assert result.details["num_leaf_clusters"] >= 8

    def test_leaf_budget_validation(self):
        with pytest.raises(ValueError):
            RecursiveKMeansPartitioner(num_top_clusters=64, num_sub_clusters=8)

    def test_requires_table(self):
        with pytest.raises(ValueError):
            RecursiveKMeansPartitioner().partition(100)


class TestSHPPartitioner:
    def test_produces_permutation(self, small_spec, train_trace):
        partitioner = SHPPartitioner(vectors_per_block=32, num_iterations=4, seed=0)
        result = partitioner.partition(small_spec.num_vectors, trace=train_trace)
        assert_is_permutation(result.order, small_spec.num_vectors)
        assert result.details["num_training_queries"] > 0

    def test_requires_trace(self):
        with pytest.raises(ValueError):
            SHPPartitioner().partition(100)

    def test_reduces_average_fanout(self, small_spec, train_trace, eval_trace):
        partitioner = SHPPartitioner(vectors_per_block=32, num_iterations=8, seed=0)
        result = partitioner.partition(small_spec.num_vectors, trace=train_trace)
        shp_layout = result.layout(32)
        identity = BlockLayout.identity(small_spec.num_vectors, 32)
        # SHP's objective: queries touch fewer blocks than under the original
        # layout, on a held-out trace.
        assert shp_layout.average_fanout(eval_trace.queries) < identity.average_fanout(
            eval_trace.queries
        )

    def test_more_iterations_do_not_hurt(self, small_spec, train_trace, eval_trace):
        fanouts = []
        for iterations in (1, 8):
            layout = (
                SHPPartitioner(vectors_per_block=32, num_iterations=iterations, seed=0)
                .partition(small_spec.num_vectors, trace=train_trace)
                .layout(32)
            )
            fanouts.append(layout.average_fanout(eval_trace.queries))
        assert fanouts[1] <= fanouts[0] * 1.05

    def test_max_queries_cap(self, small_spec, train_trace):
        partitioner = SHPPartitioner(num_iterations=2, max_queries=10)
        result = partitioner.partition(small_spec.num_vectors, trace=train_trace)
        assert result.details["num_training_queries"] <= 10

    def test_handles_trace_with_no_multi_id_queries(self):
        trace = Trace([[1], [2], [3]], num_vectors=64)
        result = SHPPartitioner(vectors_per_block=8, num_iterations=2).partition(
            64, trace=trace
        )
        assert_is_permutation(result.order, 64)

    def test_trace_larger_than_table_rejected(self):
        trace = Trace([[1, 200]], num_vectors=201)
        with pytest.raises(ValueError):
            SHPPartitioner().partition(100, trace=trace)


@given(
    num_vectors=st.integers(min_value=32, max_value=256),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=15, deadline=None)
def test_shp_always_produces_permutation(num_vectors, seed):
    """SHP must output a valid permutation for arbitrary small hypergraphs."""
    rng = np.random.default_rng(seed)
    queries = [
        rng.choice(num_vectors, size=rng.integers(2, 8), replace=False)
        for _ in range(20)
    ]
    trace = Trace(queries, num_vectors=num_vectors)
    result = SHPPartitioner(vectors_per_block=8, num_iterations=3, seed=seed).partition(
        num_vectors, trace=trace
    )
    assert_is_permutation(result.order, num_vectors)
