"""RNG plumbing: explicit generators everywhere, no hidden global state.

Every stochastic component in the package takes an explicit seed or
:class:`numpy.random.Generator` (arrivals, fault-schedule loss draws,
partitioners, synthetic embeddings); nothing draws from numpy's global
stream.  The audit test enforces that at the source level so a regression
cannot slip in silently.
"""

import re
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import ServingConfig
from repro.serving.arrivals import arrival_times
from repro.utils.rng import derive_rng, ensure_rng

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"

#: The only sanctioned ways to touch ``np.random``: constructing explicit
#: generators and type references.  Everything else (``np.random.seed``,
#: ``np.random.rand``, ``RandomState``, ...) is hidden global state.
ALLOWED_NP_RANDOM = re.compile(
    r"np\.random\.(default_rng|Generator|SeedSequence)\b"
)
NP_RANDOM_USE = re.compile(r"np\.random\.\w+")


class TestEnsureRng:
    def test_none_gives_fresh_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        assert ensure_rng(123).random() == ensure_rng(123).random()

    def test_generator_passes_through_unwrapped(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_matches_default_rng_for_ints(self):
        # ensure_rng must stay a drop-in for default_rng(seed): swapping it
        # into existing components cannot move any golden value.
        assert ensure_rng(7).random() == np.random.default_rng(7).random()


class TestDeriveRng:
    def test_streams_are_independent(self):
        a = derive_rng(0, 1).random()
        b = derive_rng(0, 2).random()
        assert a != b

    def test_deterministic_per_stream(self):
        assert derive_rng(5, 3).random() == derive_rng(5, 3).random()

    def test_accepts_generator_parent(self):
        parent = np.random.default_rng(0)
        child = derive_rng(parent, 0)
        assert isinstance(child, np.random.Generator)
        assert child is not parent


class TestArrivalsAcceptGenerators:
    @pytest.mark.parametrize("process", ["poisson", "mmpp"])
    def test_seed_and_generator_agree(self, process):
        config = ServingConfig(arrival_process=process)
        via_seed = arrival_times(config, 50, seed=42)
        via_gen = arrival_times(config, 50, rng=np.random.default_rng(42))
        np.testing.assert_array_equal(via_seed, via_gen)

    def test_generator_seed_value_also_accepted(self):
        # SeedLike: an existing Generator may be passed as the seed itself.
        config = ServingConfig()
        via_seed = arrival_times(config, 20, seed=np.random.default_rng(9))
        via_int = arrival_times(config, 20, seed=9)
        np.testing.assert_array_equal(via_seed, via_int)


class TestNoHiddenGlobalRandomness:
    def test_src_tree_has_no_global_np_random_use(self):
        offenders = []
        for path in sorted(SRC_ROOT.rglob("*.py")):
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                for match in NP_RANDOM_USE.finditer(line):
                    if not ALLOWED_NP_RANDOM.match(match.group(0)):
                        offenders.append(f"{path.relative_to(SRC_ROOT)}:{lineno}: {line.strip()}")
        assert not offenders, (
            "global numpy randomness in src/ (pass an explicit Generator "
            "instead):\n" + "\n".join(offenders)
        )

    def test_no_stdlib_random_module(self):
        # `import random` is the same hazard with a different spelling.
        offenders = [
            str(path.relative_to(SRC_ROOT))
            for path in sorted(SRC_ROOT.rglob("*.py"))
            if re.search(r"^\s*(import random\b|from random import)", path.read_text(), re.M)
        ]
        assert not offenders, f"stdlib random used in src/: {offenders}"
