"""RNG plumbing: explicit generators everywhere, no hidden global state.

Every stochastic component in the package takes an explicit seed or
:class:`numpy.random.Generator` (arrivals, fault-schedule loss draws,
partitioners, synthetic embeddings); nothing draws from numpy's global
stream.  The source-level audit lives in ``repro_lint`` rule R1 (run
repo-wide by ``tests/test_static_analysis.py``); here we keep a regression
test that R1 actually catches the known-bad patterns the old regex audit
used to hunt for.
"""

import numpy as np
import pytest

from repro.core.config import ServingConfig
from repro.serving.arrivals import arrival_times
from repro.utils.rng import derive_rng, ensure_rng


class TestEnsureRng:
    def test_none_gives_fresh_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        assert ensure_rng(123).random() == ensure_rng(123).random()

    def test_generator_passes_through_unwrapped(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_matches_default_rng_for_ints(self):
        # ensure_rng must stay a drop-in for default_rng(seed): swapping it
        # into existing components cannot move any golden value.
        assert ensure_rng(7).random() == np.random.default_rng(7).random()


class TestDeriveRng:
    def test_streams_are_independent(self):
        a = derive_rng(0, 1).random()
        b = derive_rng(0, 2).random()
        assert a != b

    def test_deterministic_per_stream(self):
        assert derive_rng(5, 3).random() == derive_rng(5, 3).random()

    def test_accepts_generator_parent(self):
        parent = np.random.default_rng(0)
        child = derive_rng(parent, 0)
        assert isinstance(child, np.random.Generator)
        assert child is not parent


class TestArrivalsAcceptGenerators:
    @pytest.mark.parametrize("process", ["poisson", "mmpp"])
    def test_seed_and_generator_agree(self, process):
        config = ServingConfig(arrival_process=process)
        via_seed = arrival_times(config, 50, seed=42)
        via_gen = arrival_times(config, 50, rng=np.random.default_rng(42))
        np.testing.assert_array_equal(via_seed, via_gen)

    def test_generator_seed_value_also_accepted(self):
        # SeedLike: an existing Generator may be passed as the seed itself.
        config = ServingConfig()
        via_seed = arrival_times(config, 20, seed=np.random.default_rng(9))
        via_int = arrival_times(config, 20, seed=9)
        np.testing.assert_array_equal(via_seed, via_int)


class TestLintCatchesHiddenGlobalRandomness:
    """The repro-lint R1 rule replaced this file's old regex source audit.

    These fixtures are the exact patterns the regex audit existed to catch;
    if R1 ever goes blind to them, this test — not just the linter's own
    suite — fails.
    """

    def test_r1_catches_global_np_random(self):
        from repro_lint import lint_source

        known_bad = (
            "import numpy as np\n"
            "np.random.seed(1234)\n"
            "ids = np.random.randint(0, 100, size=8)\n"
        )
        result = lint_source(known_bad, "src/repro/workloads/example.py")
        assert [v.rule for v in result.violations] == ["R1", "R1"]

    def test_r1_catches_stdlib_random_import(self):
        from repro_lint import lint_source

        result = lint_source("import random\n", "src/repro/workloads/example.py")
        assert [v.rule for v in result.violations] == ["R1"]