"""The fault-injection layer: event validation, window queries, the catalog."""

import pytest

from repro.cluster.faults import (
    SCENARIOS,
    DegradedLink,
    FaultSchedule,
    NodeCrash,
    SlowNode,
    make_scenario,
)


class TestEventValidation:
    def test_crash_rejects_inverted_window(self):
        with pytest.raises(ValueError, match="end_s"):
            NodeCrash(node=0, start_s=1.0, end_s=0.5)

    def test_crash_rejects_negative_node(self):
        with pytest.raises(ValueError):
            NodeCrash(node=-1, start_s=0.0, end_s=1.0)

    def test_slow_node_rejects_speedup(self):
        with pytest.raises(ValueError, match="multiplier"):
            SlowNode(node=0, start_s=0.0, end_s=1.0, multiplier=0.5)

    def test_link_rejects_bad_loss_prob(self):
        with pytest.raises(ValueError):
            DegradedLink(node=0, start_s=0.0, end_s=1.0, loss_prob=1.5)

    def test_schedule_rejects_foreign_events(self):
        with pytest.raises(TypeError, match="fault events"):
            FaultSchedule(["node0 down"])


class TestScheduleQueries:
    def test_is_down_window_half_open(self):
        faults = FaultSchedule([NodeCrash(node=1, start_s=0.2, end_s=0.6)])
        assert not faults.is_down(1, 0.199e6)
        assert faults.is_down(1, 0.2e6)
        assert faults.is_down(1, 0.5999e6)
        assert not faults.is_down(1, 0.6e6)
        assert not faults.is_down(0, 0.3e6)  # other nodes unaffected

    def test_multiplier_products_overlapping_events(self):
        faults = FaultSchedule(
            [
                SlowNode(node=0, start_s=0.0, end_s=1.0, multiplier=2.0),
                SlowNode(node=0, start_s=0.5, end_s=1.5, multiplier=3.0),
            ]
        )
        assert faults.latency_multiplier(0, 0.25e6) == pytest.approx(2.0)
        assert faults.latency_multiplier(0, 0.75e6) == pytest.approx(6.0)
        assert faults.latency_multiplier(0, 1.25e6) == pytest.approx(3.0)
        assert faults.latency_multiplier(0, 2.0e6) == pytest.approx(1.0)

    def test_link_combines_delay_and_loss(self):
        faults = FaultSchedule(
            [
                DegradedLink(node=0, start_s=0.0, end_s=1.0, extra_delay_us=100.0, loss_prob=0.5),
                DegradedLink(node=0, start_s=0.0, end_s=1.0, extra_delay_us=50.0, loss_prob=0.5),
            ]
        )
        delay, loss = faults.link(0, 0.5e6)
        assert delay == pytest.approx(150.0)
        assert loss == pytest.approx(0.75)  # independent drops: 1 - 0.5 * 0.5

    def test_link_quiet_outside_window(self):
        faults = FaultSchedule(
            [DegradedLink(node=0, start_s=0.2, end_s=0.4, extra_delay_us=10.0, loss_prob=0.1)]
        )
        assert faults.link(0, 0.5e6) == (0.0, 0.0)

    def test_crash_recovered_between(self):
        faults = FaultSchedule([NodeCrash(node=0, start_s=0.2, end_s=0.6)])
        # Recovery (crash end at 0.6 s) falls in (since, now].
        assert faults.crash_recovered_between(0, 0.5e6, 0.7e6)
        assert faults.crash_recovered_between(0, 0.5e6, 0.6e6)
        assert not faults.crash_recovered_between(0, 0.6e6, 0.7e6)  # already seen
        assert not faults.crash_recovered_between(0, 0.1e6, 0.5e6)  # still down
        assert not faults.crash_recovered_between(1, 0.0, 1.0e6)  # never crashed

    def test_empty_schedule_is_healthy(self):
        faults = FaultSchedule(())
        assert len(faults) == 0
        assert not faults.is_down(0, 1e6)
        assert faults.latency_multiplier(0, 1e6) == pytest.approx(1.0)
        assert faults.link(0, 1e6) == (0.0, 0.0)


class TestScenarioCatalog:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_every_catalog_entry_instantiates(self, name):
        faults = make_scenario(name, num_nodes=4)
        assert isinstance(faults, FaultSchedule)

    def test_none_is_empty(self):
        assert len(make_scenario("none", num_nodes=4)) == 0

    def test_unknown_scenario_lists_catalog(self):
        with pytest.raises(ValueError, match="catalog"):
            make_scenario("meteor_strike", num_nodes=4)

    def test_overrides_reach_the_event(self):
        faults = make_scenario(
            "slow_node", num_nodes=4, start_s=0.1, duration_s=0.2, node=2, multiplier=5.0
        )
        assert faults.latency_multiplier(2, 0.2e6) == pytest.approx(5.0)
        assert faults.latency_multiplier(2, 0.05e6) == pytest.approx(1.0)

    def test_unknown_overrides_ignored(self):
        # One sweep loop drives every scenario with a shared parameter set;
        # scenarios ignore knobs they do not use.
        faults = make_scenario("crash_recover", num_nodes=4, loss_prob=0.5, multiplier=9.0)
        assert len(faults) == 1

    def test_degraded_cluster_scales_to_small_clusters(self):
        assert len(make_scenario("degraded_cluster", num_nodes=1)) == 1
        assert len(make_scenario("degraded_cluster", num_nodes=2)) == 2
        assert len(make_scenario("degraded_cluster", num_nodes=4)) == 3
