"""Tests for the workload-characterisation analysis (paper Table 1 / Figure 4)."""

import numpy as np
import pytest

from repro.workloads.characterization import (
    access_counts,
    access_histogram,
    characterize_model,
    characterize_table,
    compulsory_miss_rate,
)
from repro.workloads.trace import ModelTrace, Trace


def simple_trace():
    return Trace([[0, 1], [1, 2], [1]], num_vectors=5)


class TestAccessCounts:
    def test_counts(self):
        counts = access_counts(simple_trace())
        assert counts.tolist() == [1, 3, 1, 0, 0]

    def test_empty_trace(self):
        counts = access_counts(Trace([], num_vectors=3))
        assert counts.tolist() == [0, 0, 0]

    def test_counts_sum_to_lookups(self, eval_trace):
        assert access_counts(eval_trace).sum() == eval_trace.num_lookups


class TestCompulsoryMissRate:
    def test_simple(self):
        assert compulsory_miss_rate(simple_trace()) == pytest.approx(3 / 5)

    def test_empty(self):
        assert compulsory_miss_rate(Trace([], num_vectors=3)) == pytest.approx(0.0)

    def test_all_unique(self):
        trace = Trace([[0], [1], [2]], num_vectors=3)
        assert compulsory_miss_rate(trace) == pytest.approx(1.0)


class TestAccessHistogram:
    def test_histogram_counts_accessed_vectors_only(self):
        edges, hist = access_histogram(simple_trace(), num_bins=3)
        assert hist.sum() == 3  # three distinct vectors were accessed
        assert len(edges) == 4

    def test_empty_trace(self):
        edges, hist = access_histogram(Trace([], num_vectors=3), num_bins=5)
        assert hist.sum() == 0

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            access_histogram(simple_trace(), num_bins=0)

    def test_skewed_trace_has_heavy_tail(self, eval_trace):
        edges, hist = access_histogram(eval_trace, num_bins=20)
        # Most vectors are accessed rarely (first bin dominates), a hallmark of
        # the paper's Figure 4.
        assert hist[0] == hist.max()


class TestCharacterize:
    def test_characterize_table_row(self):
        row = characterize_table("t", simple_trace(), lookup_share=0.4)
        assert row.num_queries == 3
        assert row.num_lookups == 5
        assert row.unique_vectors_accessed == 3
        assert row.compulsory_miss_rate == pytest.approx(0.6)
        assert "t" in row.as_row()[0]

    def test_characterize_model_shares(self):
        model = ModelTrace(
            {"a": simple_trace(), "b": Trace([[0]], num_vectors=2)}
        )
        rows = characterize_model(model)
        assert rows["a"].lookup_share == pytest.approx(5 / 6)
        assert rows["b"].lookup_share == pytest.approx(1 / 6)
