"""Robustness behaviour of the fault-injected cluster store.

These are the graceful-degradation contracts: replication survives a node
crash with zero failed requests, an unreplicated crash degrades (but never
wedges) the stream, slow nodes trigger hedges and breaker ejections, flaky
links are retried, overload sheds instead of queueing unboundedly, and
recovered nodes restart cold.  Every run is a pure function of
(trace, configs, schedule, seed) — pinned by the determinism test.
"""

import numpy as np
import pytest

from test_interleaved_equivalence import build_store

from repro.cluster import (
    ClusterStore,
    DegradedLink,
    FaultSchedule,
    NodeCrash,
    SlowNode,
    run_scenario,
    sweep_scenarios,
)
from repro.core.config import ClusterConfig, ServingConfig

#: Scenario window tuned to the ~0.05 s makespan of the seed traces
#: (106 requests at the default 2000 rps).
WINDOW = dict(start_s=0.005, duration_s=0.03)


def run(seed, scenario, cluster_config, overrides=WINDOW, **kwargs):
    store, trace = build_store(seed)
    return run_scenario(
        store,
        trace,
        scenario=scenario,
        cluster_config=cluster_config,
        scenario_overrides=overrides,
        **kwargs,
    )


class TestReplicationSurvivesCrash:
    def test_r2_single_crash_zero_failed_requests(self):
        # The acceptance criterion: with R=2, one crashed node costs
        # latency (timeouts + retries) but zero availability.
        report = run(1, "crash_recover", ClusterConfig(num_nodes=4, replication=2))
        assert report.availability == pytest.approx(1.0)
        assert report.counters.requests_degraded == 0
        assert report.counters.timeouts > 0
        assert report.counters.retries > 0

    def test_crash_is_visible_in_tail_latency(self):
        config = ClusterConfig(num_nodes=4, replication=2)
        healthy = run(1, "none", config)
        crashed = run(1, "crash_recover", config)
        assert crashed.latency.p999_us > healthy.latency.p999_us

    def test_r1_crash_degrades_but_never_wedges(self):
        # Unreplicated, a crashed node's shards cannot be served: those
        # requests are degraded — but every request still completes.
        report = run(1, "crash_recover", ClusterConfig(num_nodes=4, replication=1))
        assert report.counters.requests_degraded > 0
        assert 0.0 < report.availability < 1.0
        assert report.num_requests == report.counters.requests_total

    def test_cold_restart_after_recovery(self):
        config = ClusterConfig(num_nodes=4, replication=2, breaker_cooloff_s=0.004)
        report = run(
            1,
            "crash_recover",
            config,
            overrides=dict(start_s=0.002, duration_s=0.01),
        )
        assert report.counters.cold_restarts >= 1
        assert report.availability == pytest.approx(1.0)


class TestSlowNodesAndHedging:
    def test_slow_node_triggers_hedges(self):
        report = run(1, "slow_node", ClusterConfig(num_nodes=4, replication=2))
        assert report.counters.hedges_launched > 0
        assert report.counters.hedges_won > 0
        assert report.availability == pytest.approx(1.0)

    def test_hedging_can_be_disabled(self):
        report = run(
            1,
            "slow_node",
            ClusterConfig(num_nodes=4, replication=2, hedge_enabled=False),
        )
        assert report.counters.hedges_launched == 0

    def test_breaker_ejects_persistently_slow_node(self):
        store, trace = build_store(1)
        faults = FaultSchedule(
            [SlowNode(node=0, start_s=0.0, end_s=10.0, multiplier=200.0)]
        )
        config = ClusterConfig(
            num_nodes=4,
            replication=2,
            breaker_slow_threshold_us=2000.0,
            breaker_failure_threshold=3,
        )
        report = run_scenario(store, trace, scenario=faults, cluster_config=config)
        assert report.counters.breaker_ejections > 0
        assert report.counters.breaker_skips > 0
        assert report.availability == pytest.approx(1.0)


class TestFlakyLinks:
    def test_losses_are_retried(self):
        report = run(
            1,
            "flaky_link",
            ClusterConfig(num_nodes=4, replication=2),
            overrides=dict(start_s=0.005, duration_s=0.03, loss_prob=0.2),
        )
        assert report.counters.link_losses > 0
        assert report.counters.retries >= report.counters.link_losses
        assert report.availability == pytest.approx(1.0)

    def test_loss_draws_are_seeded(self):
        config = ClusterConfig(num_nodes=4, replication=2, seed=7)
        a = run(1, "flaky_link", config)
        b = run(1, "flaky_link", config)
        assert a.counters.as_dict() == b.counters.as_dict()
        assert a.latency.to_dict() == b.latency.to_dict()

    def test_different_seeds_draw_differently(self):
        overrides = dict(start_s=0.005, duration_s=0.03, loss_prob=0.3)
        a = run(1, "flaky_link", ClusterConfig(num_nodes=4, replication=2, seed=1), overrides)
        b = run(1, "flaky_link", ClusterConfig(num_nodes=4, replication=2, seed=2), overrides)
        assert a.counters.link_losses != b.counters.link_losses


class TestAdmissionControl:
    def test_overload_sheds_instead_of_queueing(self):
        # A 50x-slowed node with a tight SLO: reads that would wait out a
        # huge backlog are rejected fast and retried on a replica.
        store, trace = build_store(1)
        faults = FaultSchedule(
            [SlowNode(node=0, start_s=0.0, end_s=10.0, multiplier=50.0)]
        )
        config = ClusterConfig(
            num_nodes=4,
            replication=2,
            default_slo_us=500.0,
            admission_queue_slack=1.0,
        )
        report = run_scenario(store, trace, scenario=faults, cluster_config=config)
        assert report.counters.sheds > 0

    def test_per_table_slo_overrides(self):
        config = ClusterConfig(
            default_slo_us=1000.0, table_slo_us=(("t-shadow", 250.0),)
        )
        assert config.slo_us("t-shadow") == pytest.approx(250.0)
        assert config.slo_us("t-noprefetch") == pytest.approx(1000.0)


class TestDegradedCluster:
    def test_compound_scenario_costs_availability_and_tail(self):
        config = ClusterConfig(num_nodes=4, replication=2)
        healthy = run(1, "none", config)
        degraded = run(1, "degraded_cluster", config)
        assert degraded.availability < healthy.availability
        assert degraded.latency.p999_us > healthy.latency.p999_us
        assert degraded.counters.requests_degraded > 0

    def test_sweep_runs_whole_catalog(self):
        store, trace = build_store(0)
        reports = sweep_scenarios(
            store,
            trace,
            cluster_config=ClusterConfig(num_nodes=4, replication=2),
            scenario_overrides=WINDOW,
            num_requests=50,
        )
        assert set(reports) == {
            "none",
            "crash_recover",
            "slow_node",
            "flaky_link",
            "degraded_cluster",
        }
        assert reports["none"].availability == pytest.approx(1.0)
        for report in reports.values():
            assert report.num_requests == 50
            assert report.to_dict()["counters"]["requests_total"] == 50


class TestStoreMechanics:
    def test_unknown_table_raises(self):
        store, _ = build_store(0)
        cluster = ClusterStore.from_store(store)
        with pytest.raises(KeyError, match="unknown table"):
            cluster.serve_request({"no-such-table": np.array([0, 1])})

    def test_empty_table_query_skipped(self):
        store, _ = build_store(0)
        cluster = ClusterStore.from_store(store)
        outcome = cluster.serve_request({"t-noprefetch": np.array([], dtype=np.int64)})
        assert outcome.shard_groups == 0
        assert outcome.ok

    def test_from_store_defaults_to_store_cluster_config(self):
        store, _ = build_store(0)
        cluster = ClusterStore.from_store(store)
        assert cluster.config is store.config.cluster
        assert len(cluster.nodes) == store.config.cluster.num_nodes

    def test_rejects_empty_spec_set(self):
        with pytest.raises(ValueError, match="at least one table"):
            ClusterStore({}, ClusterConfig())

    def test_replication_clamped_to_cluster_size(self):
        store, _ = build_store(0)
        cluster = ClusterStore.from_store(
            store, config=ClusterConfig(num_nodes=2, replication=3)
        )
        assert cluster.replication == 2

    def test_node_blocks_read_sums_to_aggregate(self):
        store, trace = build_store(0)
        report = run_scenario(
            store,
            trace,
            scenario="none",
            cluster_config=ClusterConfig(num_nodes=4, replication=2),
        )
        assert sum(report.node_blocks_read) == report.blocks_read

    def test_report_to_dict_is_json_ready(self):
        import json

        store, trace = build_store(0)
        report = run_scenario(store, trace, num_requests=20)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["scenario"] == "none"
        assert payload["counters"]["requests_total"] == 20
