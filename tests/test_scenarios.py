"""Tests for the adversarial-workload subsystem (repro.scenarios).

Covers the scenario generators (seeded golden pins — every trace is a pure
function of its config), the live layout-swap machinery (a same-layout swap
is a counter-exact no-op; geometry mismatches refuse), the re-partitioning
lifecycle (drift breaks a stale SHP placement, retraining wins hit rate
back), and the config dataclasses' validation plus their repro-lint R4
registration.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.bandana import BandanaStore
from repro.core.config import BandanaConfig, ServingConfig
from repro.nvm.block import BlockLayout
from repro.scenarios import (
    RepartitionConfig,
    RepartitionManager,
    ScenarioConfig,
    ScenarioReport,
    TraceLoaderConfig,
    generate_scenario_trace,
    layout_churn,
    run_workload_scenario,
    scenario_serving_config,
)
from repro.serving import simulate_serving
from repro.workloads.trace import ModelTrace
from repro_lint.rules import CONFIG_CLASSES


def small_scenario(kind, **overrides):
    params = dict(
        kind=kind,
        num_queries=60,
        num_vectors=256,
        avg_lookups_per_query=8.0,
        drift_epoch_queries=10,
        flash_crowd_ids=32,
        seed=5,
    )
    params.update(overrides)
    return ScenarioConfig(**params)


def scenario_store_config(num_vectors):
    # Placement-sensitive store: small DRAM cache, permissive admission.
    return BandanaConfig(
        total_cache_vectors=num_vectors // 8,
        tune_thresholds=False,
        default_threshold=2,
    )


# ----------------------------------------------------------------- generators
class TestGenerators:
    def test_seeded_golden_pins(self):
        # Each generator is a pure function of its config: pin the trace
        # shape and an id checksum per kind.  (Drift and diurnal share the
        # stationary id law, so they agree on size but not on the ids the
        # rotation touches; flash re-dedupes diverted lookups.)
        pins = {
            "drift": (439, 56842),
            "flash-crowd": (434, 52427),
            "diurnal": (439, 52307),
        }
        for kind, (num_lookups, checksum) in pins.items():
            trace = generate_scenario_trace(small_scenario(kind))
            ids = np.concatenate(trace.queries)
            assert len(trace.queries) == 60
            assert (int(ids.size), int(ids.sum())) == (num_lookups, checksum), kind

    def test_regeneration_is_bit_identical(self):
        config = small_scenario("drift")
        first = generate_scenario_trace(config)
        second = generate_scenario_trace(config)
        for a, b in zip(first.queries, second.queries):
            np.testing.assert_array_equal(a, b)

    def test_dense_id_contract(self):
        for kind in ("drift", "flash-crowd", "diurnal"):
            trace = generate_scenario_trace(small_scenario(kind))
            ids = np.concatenate(trace.queries)
            assert ids.min() >= 0
            assert ids.max() < trace.num_vectors
            # Queries are de-duplicated (the engine's contract).
            for query in trace.queries:
                assert len(np.unique(query)) == query.size

    def test_stationary_control_has_no_rotation(self):
        moving = small_scenario("drift", drift_rotation_per_epoch=0.2)
        frozen = small_scenario("drift", drift_rotation_per_epoch=0.0)
        assert int(np.concatenate(generate_scenario_trace(moving).queries).sum()) != int(
            np.concatenate(generate_scenario_trace(frozen).queries).sum()
        )

    def test_flash_crowd_concentrates_on_cold_ids(self):
        config = small_scenario(
            "flash-crowd", flash_traffic_share=1.0, flash_start_fraction=0.5,
            flash_duration_fraction=0.5,
        )
        trace = generate_scenario_trace(config)
        # During the flash window with full diversion, lookups hit the crowd.
        flash_ids = np.concatenate(trace.queries[40:])
        control = generate_scenario_trace(
            dataclasses.replace(config, flash_traffic_share=0.0)
        )
        control_ids = np.concatenate(control.queries[40:])
        assert len(np.unique(flash_ids)) <= config.flash_crowd_ids
        assert len(np.unique(control_ids)) > config.flash_crowd_ids

    def test_diurnal_maps_onto_mmpp_serving(self):
        config = small_scenario("diurnal", diurnal_burst_factor=5.0)
        serving = scenario_serving_config(config, ServingConfig(arrival_rate_rps=1000.0))
        assert serving.arrival_process == "mmpp"
        assert serving.mmpp_burst_factor == config.diurnal_burst_factor
        # Non-diurnal kinds pass the base config through untouched.
        passthrough = scenario_serving_config(
            small_scenario("drift"), ServingConfig(arrival_rate_rps=1000.0)
        )
        assert passthrough.arrival_process == "poisson"


# ------------------------------------------------------------------ swap_layout
class TestSwapLayout:
    def build(self, num_vectors=256, seed=9, config=None):
        trace = generate_scenario_trace(
            small_scenario("drift", num_vectors=num_vectors, seed=seed)
        )
        store = BandanaStore.build(
            ModelTrace({"t": trace}), config or scenario_store_config(num_vectors)
        )
        return store, trace

    def test_same_layout_swap_is_counter_exact_noop(self):
        store, trace = self.build()
        baseline, _ = self.build()
        mid = len(trace.queries) // 2
        for i, query in enumerate(trace.queries):
            store.lookup("t", query, gather=False)
            if i == mid:
                store.swap_layout("t", store.tables["t"].layout, retain_cache=True)
        for query in trace.queries:
            baseline.lookup("t", query, gather=False)
        assert (
            store.tables["t"].stats.counters()
            == baseline.tables["t"].stats.counters()
        )

    def test_cold_swap_loses_residency(self):
        # Prefetch admission off (absurd threshold) and a big cache: hits
        # come from LRU residency alone, which only the cold swap discards.
        config = BandanaConfig(
            total_cache_vectors=128, tune_thresholds=False, default_threshold=10**6
        )
        retained, trace = self.build(config=config)
        flushed, _ = self.build(config=config)
        mid = len(trace.queries) // 2
        for i, query in enumerate(trace.queries):
            retained.lookup("t", query, gather=False)
            flushed.lookup("t", query, gather=False)
            if i == mid:
                layout = retained.tables["t"].layout
                retained.swap_layout("t", layout, retain_cache=True)
                flushed.swap_layout("t", layout, retain_cache=False)
        assert (
            flushed.tables["t"].stats.hits < retained.tables["t"].stats.hits
        )

    def test_geometry_mismatch_refuses(self):
        store, _ = self.build()
        wrong_universe = BlockLayout.identity(128, 32)
        with pytest.raises(ValueError, match="geometry"):
            store.swap_layout("t", wrong_universe)
        wrong_blocking = BlockLayout.identity(256, 16)
        with pytest.raises(ValueError, match="geometry"):
            store.swap_layout("t", wrong_blocking)

    def test_layout_churn(self):
        identity = BlockLayout.identity(64, 8)
        assert layout_churn(identity, identity) == pytest.approx(0.0)
        reversed_order = BlockLayout(
            np.arange(63, -1, -1, dtype=np.int64), vectors_per_block=8
        )
        assert layout_churn(identity, reversed_order) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            layout_churn(identity, BlockLayout.identity(32, 8))


# -------------------------------------------------------------------- lifecycle
class TestLifecycle:
    def drifting_trace(self, num_queries=900, num_vectors=1024):
        return generate_scenario_trace(
            ScenarioConfig(
                kind="drift",
                num_queries=num_queries,
                num_vectors=num_vectors,
                avg_lookups_per_query=16.0,
                drift_rotation_per_epoch=0.03,
                drift_epoch_queries=num_queries // 18,
                drift_start_fraction=1.0 / 3.0,
                seed=7,
            )
        )

    def test_drift_breaks_shp_and_lifecycle_recovers(self):
        trace = self.drifting_trace()
        common = dict(
            config=scenario_store_config(1024),
            train_fraction=1.0 / 3.0,
            window_queries=50,
            warmup_queries=100,
        )
        stale = run_workload_scenario(trace, **common)
        repaired = run_workload_scenario(
            trace,
            repartition=RepartitionConfig(
                cadence_queries=150,
                window_queries=300,
                min_window_queries=150,
                shp_iterations=6,
            ),
            **common,
        )
        # The stale placement decays; the lifecycle wins a real share back.
        assert stale.hit_rate_decay > 0.05
        assert repaired.late_hit_rate > stale.late_hit_rate
        assert repaired.repartition["retrains"] >= 2
        assert len(repaired.repartition["swaps"]) == repaired.repartition["retrains"]
        # Partition age saw-tooths under the lifecycle, grows monotonically
        # without one.
        assert max(repaired.window_partition_age) < max(stale.window_partition_age)
        assert stale.window_partition_age == sorted(stale.window_partition_age)

    def test_blackout_delays_the_swap(self):
        trace = self.drifting_trace(num_queries=450)
        store = BandanaStore.build(
            ModelTrace({"t": trace}), scenario_store_config(1024)
        )
        manager = RepartitionManager(
            store,
            "t",
            RepartitionConfig(
                cadence_queries=100,
                window_queries=200,
                min_window_queries=50,
                blackout_queries=30,
                shp_iterations=2,
            ),
        )
        swap_indices = []
        for i, query in enumerate(trace.queries):
            store.lookup("t", query, gather=False)
            if manager.observe(query):
                swap_indices.append(i)
        assert manager.retrains >= 1
        # Retrains trigger at multiples of the cadence; each swap lands
        # exactly blackout_queries later.
        assert all((i + 1 - 30) % 100 == 0 for i in swap_indices)

    def test_min_window_gate(self):
        trace = self.drifting_trace(num_queries=450)
        store = BandanaStore.build(
            ModelTrace({"t": trace}), scenario_store_config(1024)
        )
        manager = RepartitionManager(
            store,
            "t",
            RepartitionConfig(
                cadence_queries=100,
                window_queries=400,
                min_window_queries=350,
                shp_iterations=2,
            ),
        )
        for query in trace.queries[:300]:
            store.lookup("t", query, gather=False)
            manager.observe(query)
        assert manager.retrains == 0  # window never reached the minimum


# ---------------------------------------------------------------------- runner
class TestRunner:
    def test_report_shape_and_series(self):
        trace = generate_scenario_trace(
            small_scenario("drift", num_queries=120, num_vectors=512)
        )
        report = run_workload_scenario(
            trace,
            config=scenario_store_config(512),
            train_fraction=0.5,
            window_queries=10,
        )
        assert isinstance(report, ScenarioReport)
        assert report.num_train_queries == 60
        assert report.num_eval_queries == 60
        assert len(report.window_hit_rates) == 6
        assert len(report.window_partition_age) == 6
        assert 0.0 <= report.overall_hit_rate <= 1.0
        payload = report.to_dict()
        assert payload["window_hit_rates"] == [
            round(v, 6) for v in report.window_hit_rates
        ]

    def test_serving_leg_reports_latency(self):
        # Also the regression pin for the aggregate-stats aliasing fix: a
        # single-table store must report a real (non-zero) serving hit rate.
        trace = generate_scenario_trace(
            small_scenario("drift", num_queries=200, num_vectors=512)
        )
        report = run_workload_scenario(
            trace,
            config=scenario_store_config(512),
            train_fraction=0.5,
            window_queries=20,
            serving=ServingConfig(arrival_rate_rps=2000.0, seed=3),
            serving_requests=80,
        )
        assert report.serving is not None
        assert report.serving["num_requests"] == 80
        assert report.serving["p999_us"] >= report.serving["p50_us"] > 0
        assert report.serving["hit_rate"] > 0.0

    def test_invalid_fractions_refuse(self):
        trace = generate_scenario_trace(small_scenario("drift"))
        with pytest.raises(ValueError):
            run_workload_scenario(trace, train_fraction=0.0)
        with pytest.raises(ValueError):
            run_workload_scenario(trace, train_fraction=1.0)


# ------------------------------------------------------- single-table serving
class TestSingleTableServingStats:
    def test_aggregate_stats_returns_a_snapshot(self):
        # Regression: aggregate_stats on a one-table store used to return
        # the live ReplayStats object itself, so before/after deltas were
        # identically zero and simulate_serving reported hit_rate == 0.
        trace = generate_scenario_trace(small_scenario("drift", num_queries=200))
        train, evaluation = trace.split(0.5)
        store = BandanaStore.build(
            ModelTrace({"only": train}), scenario_store_config(256)
        )
        before = store.aggregate_stats()
        report = simulate_serving(
            store,
            ModelTrace({"only": evaluation}),
            ServingConfig(arrival_rate_rps=2000.0, seed=3),
            num_requests=60,
        )
        assert before.lookups == 0  # the snapshot did not advance with the store
        assert report.hit_rate > 0.0


# ---------------------------------------------------------------------- config
class TestConfigValidation:
    def test_registered_with_repro_lint(self):
        assert {"ScenarioConfig", "TraceLoaderConfig", "RepartitionConfig"} <= set(
            CONFIG_CLASSES
        )

    def test_scenario_config_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ScenarioConfig(kind="meteor-strike")
        with pytest.raises(ValueError):
            ScenarioConfig(query_locality=1.5)
        with pytest.raises(ValueError):
            ScenarioConfig(community_size=10_000, num_vectors=4096)
        with pytest.raises(ValueError):
            ScenarioConfig(flash_start_fraction=0.7, flash_duration_fraction=0.5)
        with pytest.raises(ValueError):
            ScenarioConfig(flash_crowd_ids=10_000, num_vectors=4096)
        with pytest.raises(ValueError):
            ScenarioConfig(kind="diurnal", diurnal_day_fraction=0.0)

    def test_loader_config_rejects_bad_values(self):
        with pytest.raises(ValueError):
            TraceLoaderConfig(path="")
        with pytest.raises(ValueError):
            TraceLoaderConfig(path="x.csv", format="parquet")
        with pytest.raises(ValueError):
            TraceLoaderConfig(path="x.csv", chunk_queries=0)
        with pytest.raises(ValueError):
            TraceLoaderConfig(path="x.csv", max_queries=0)

    def test_repartition_config_rejects_bad_values(self):
        with pytest.raises(ValueError):
            RepartitionConfig(partitioner="kmeans++")
        with pytest.raises(ValueError):
            RepartitionConfig(cadence_queries=0)
        with pytest.raises(ValueError):
            RepartitionConfig(blackout_queries=-1)
        with pytest.raises(ValueError):
            RepartitionConfig(shp_iterations=0)
