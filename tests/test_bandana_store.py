"""Integration tests for the end-to-end Bandana store."""

import numpy as np
import pytest

from repro.core.bandana import BandanaStore
from repro.core.config import BandanaConfig
from repro.embeddings import EmbeddingModel, EmbeddingTable, synthesize_topic_vectors
from repro.simulation.runner import simulate_store
from repro.workloads import SyntheticTraceGenerator
from repro.workloads.trace import ModelTrace
from tests.conftest import make_spec


@pytest.fixture(scope="module")
def store_workload():
    """Two small tables with training and evaluation traces."""
    specs = {
        "alpha": make_spec(name="alpha", num_vectors=2048, avg_lookups=16, compulsory=0.1),
        "beta": make_spec(name="beta", num_vectors=4096, avg_lookups=8, compulsory=0.4),
    }
    generators = {
        name: SyntheticTraceGenerator(spec, seed=20 + i, expected_lookups=4000)
        for i, (name, spec) in enumerate(specs.items())
    }
    train = ModelTrace({n: g.generate_lookups(8000) for n, g in generators.items()})
    evaluation = ModelTrace({n: g.generate_lookups(4000) for n, g in generators.items()})
    model = EmbeddingModel()
    for name, spec in specs.items():
        values = synthesize_topic_vectors(
            generators[name].topic_of(), dim=16, noise=0.4, seed=5, dtype=np.float32
        )
        model.add_table(
            EmbeddingTable(name, spec.num_vectors, dim=16, dtype=np.float32, values=values)
        )
    return specs, model, train, evaluation


@pytest.fixture(scope="module")
def built_store(store_workload):
    specs, model, train, _ = store_workload
    config = BandanaConfig(
        total_cache_vectors=800,
        mini_cache_sampling_rate=0.25,
        shp_iterations=6,
        seed=0,
    )
    return BandanaStore.build(
        train,
        config,
        embedding_model=model,
        num_vectors={n: s.num_vectors for n, s in specs.items()},
    )


class TestBuild:
    def test_tables_and_budget(self, built_store):
        assert set(built_store.tables) == {"alpha", "beta"}
        total_cache = sum(
            state.cache_config.cache_size_vectors for state in built_store.tables.values()
        )
        assert total_cache <= built_store.config.total_cache_vectors
        for state in built_store.tables.values():
            assert state.layout.num_vectors == state.access_counts.shape[0]
            assert state.cache_config.threshold is not None

    def test_dram_and_nvm_footprints(self, built_store, store_workload):
        specs = store_workload[0]
        total_vectors = sum(s.num_vectors for s in specs.values())
        assert built_store.nvm_bytes() >= total_vectors * 128
        assert built_store.dram_bytes() <= built_store.config.total_cache_vectors * 128

    def test_kmeans_partitioner_requires_model(self, store_workload):
        _, _, train, _ = store_workload
        config = BandanaConfig(partitioner="kmeans", total_cache_vectors=100)
        with pytest.raises(ValueError):
            BandanaStore.build(train, config)

    def test_identity_partitioner_without_model(self, store_workload):
        specs, _, train, _ = store_workload
        config = BandanaConfig(
            partitioner="identity", total_cache_vectors=200, tune_thresholds=False
        )
        store = BandanaStore.build(
            train, config, num_vectors={n: s.num_vectors for n, s in specs.items()}
        )
        np.testing.assert_array_equal(
            store.tables["alpha"].layout.order, np.arange(specs["alpha"].num_vectors)
        )

    def test_allocation_modes(self, store_workload):
        specs, _, train, _ = store_workload
        sizes = {n: s.num_vectors for n, s in specs.items()}
        for allocation in ("uniform", "proportional", "hit-rate"):
            config = BandanaConfig(
                total_cache_vectors=400,
                allocation=allocation,
                tune_thresholds=False,
                shp_iterations=2,
            )
            store = BandanaStore.build(train, config, num_vectors=sizes)
            total = sum(s.cache_config.cache_size_vectors for s in store.tables.values())
            assert total <= 400 + 1


class TestServing:
    def test_lookup_returns_vectors(self, built_store):
        values = built_store.lookup("alpha", [1, 2, 3])
        assert values.shape == (3, 16)
        stats = built_store.tables["alpha"].cache_stats
        assert stats.lookups == 3

    def test_lookup_unknown_table(self, built_store):
        with pytest.raises(KeyError):
            built_store.lookup("gamma", [1])

    def test_lookup_request_multi_table(self, built_store):
        out = built_store.lookup_request({"alpha": [1], "beta": [2, 3]})
        assert out["alpha"].shape == (1, 16)
        assert out["beta"].shape == (2, 16)

    def test_pooled_features_shape(self, built_store):
        built_store.reset_serving_state()
        features = built_store.pooled_features({"alpha": [1, 2], "beta": [3]})
        assert features.shape == (32,)

    def test_cache_hits_on_repeat(self, built_store):
        built_store.reset_serving_state()
        built_store.lookup("alpha", [5])
        built_store.lookup("alpha", [5])
        stats = built_store.tables["alpha"].cache_stats
        assert stats.hits >= 1

    def test_reset_serving_state(self, built_store):
        built_store.lookup("alpha", [1])
        built_store.reset_serving_state()
        assert built_store.aggregate_stats().lookups == 0
        assert built_store.total_blocks_read() == 0

    def test_lookup_counting_mode_without_model(self, store_workload):
        specs, _, train, _ = store_workload
        config = BandanaConfig(
            total_cache_vectors=200, tune_thresholds=False, shp_iterations=2
        )
        store = BandanaStore.build(
            train, config, num_vectors={n: s.num_vectors for n, s in specs.items()}
        )
        assert store.lookup("alpha", [1, 2]) is None
        assert store.aggregate_stats().lookups == 2


class TestServingAttribution:
    """The PR 1 attribution note, pinned as tests.

    Engine-backed serving keeps the pending-prefetch set across calls, so a
    stream served in many ``lookup_batch`` calls must count prefetch hits
    exactly like one uninterrupted replay of the concatenated stream — and
    ``reset_serving_state`` must restore a clean slate that reproduces the
    same counters again.
    """

    @staticmethod
    def _reference_uninterrupted(store, name, queries):
        from repro.caching.replay import replay_table_cache
        from repro.caching.policies import AccessThresholdPolicy

        state = store.tables[name]
        policy = AccessThresholdPolicy(
            state.access_counts, state.cache_config.threshold
        )
        return replay_table_cache(
            queries,
            state.layout,
            policy,
            cache_size=state.cache_config.cache_size_vectors,
            vector_bytes=store.config.vector_bytes,
        )

    @staticmethod
    def _counters(stats):
        return stats.counters()

    @pytest.fixture()
    def prefetching_store(self, store_workload):
        """A store whose admission threshold actually admits prefetches."""
        specs, _, train, _ = store_workload
        config = BandanaConfig(
            total_cache_vectors=800,
            tune_thresholds=False,
            default_threshold=0.0,  # admit every trained vector
            shp_iterations=4,
        )
        return BandanaStore.build(
            train, config, num_vectors={n: s.num_vectors for n, s in specs.items()}
        )

    def test_multi_call_lookup_batch_matches_uninterrupted_replay(
        self, prefetching_store, store_workload
    ):
        built_store = prefetching_store
        _, _, _, evaluation = store_workload
        queries = evaluation["alpha"].queries
        # Serve the stream in five separate batches (plus a few per-query
        # lookups in the middle) — attribution must survive the call splits.
        fifth = max(1, len(queries) // 5)
        served = 0
        while served < len(queries):
            chunk = queries[served : served + fifth]
            if served // fifth == 2:
                for query in chunk:
                    built_store.lookup("alpha", query)
            else:
                built_store.lookup_batch("alpha", chunk)
            served += len(chunk)
        reference = self._reference_uninterrupted(built_store, "alpha", queries)
        stats = built_store.tables["alpha"].stats
        assert self._counters(stats) == self._counters(reference)
        assert stats.prefetch_hits == reference.prefetch_hits > 0

    def test_reset_serving_state_restores_clean_slate(
        self, built_store, store_workload
    ):
        _, _, _, evaluation = store_workload
        built_store.reset_serving_state()
        queries = evaluation["beta"].queries
        built_store.lookup_batch("beta", queries)
        first = self._counters(built_store.tables["beta"].stats)
        first_engine = built_store.tables["beta"].engine

        built_store.reset_serving_state()
        state = built_store.tables["beta"]
        assert state.stats.lookups == 0 and state.stats.prefetch_admitted == 0
        assert state.engine is None  # rebuilt lazily against the fresh stats
        assert state.device.blocks_read == 0

        built_store.lookup_batch("beta", queries)
        assert self._counters(built_store.tables["beta"].stats) == first
        assert built_store.tables["beta"].engine is not first_engine


class TestEndToEndBandwidth:
    def test_store_beats_baseline(self, built_store, store_workload):
        """The full Bandana pipeline must read fewer NVM blocks than the
        no-prefetch baseline on a held-out trace (the paper's headline claim)."""
        _, _, _, evaluation = store_workload
        result = simulate_store(built_store, evaluation)
        assert result.total_block_reads > 0
        assert result.bandwidth_increase > 0.0
        assert 0.0 < result.aggregate_hit_rate <= 1.0

    def test_effective_bandwidth_above_baseline_fraction(self, built_store, store_workload):
        _, _, _, evaluation = store_workload
        simulate_store(built_store, evaluation)
        bandwidth = built_store.effective_bandwidth()
        # The baseline policy's effective bandwidth is vector/block = 1/32; a
        # working Bandana configuration must do better.
        assert bandwidth.fraction > 128 / 4096
