"""End-to-end integration test: the full paper pipeline on a tiny workload.

Covers the whole flow the benchmarks use — generate traces, train SHP, build
the store, tune thresholds with miniature caches, replay a held-out trace and
compare against the baseline and against weaker placements — asserting the
paper's qualitative conclusions on a configuration small enough for CI.
"""

import numpy as np
import pytest

from repro.core.bandana import BandanaStore
from repro.core.config import BandanaConfig
from repro.embeddings import EmbeddingModel, EmbeddingTable, synthesize_topic_vectors
from repro.nvm.latency import NVMLatencyModel
from repro.simulation.runner import simulate_store
from repro.workloads import SyntheticTraceGenerator
from repro.workloads.trace import ModelTrace
from tests.conftest import make_spec


@pytest.fixture(scope="module")
def pipeline():
    specs = {
        "cacheable": make_spec(
            name="cacheable", num_vectors=4096, avg_lookups=24, compulsory=0.08, alpha=1.0
        ),
        "random": make_spec(
            name="random", num_vectors=4096, avg_lookups=12, compulsory=0.55, alpha=0.4
        ),
    }
    generators = {
        name: SyntheticTraceGenerator(spec, seed=31 + i, expected_lookups=6000)
        for i, (name, spec) in enumerate(specs.items())
    }
    train = ModelTrace({n: g.generate_lookups(15000) for n, g in generators.items()})
    evaluation = ModelTrace({n: g.generate_lookups(6000) for n, g in generators.items()})
    embedding_model = EmbeddingModel()
    for name, spec in specs.items():
        values = synthesize_topic_vectors(
            generators[name].topic_of(), dim=16, noise=0.5, seed=2, dtype=np.float32
        )
        embedding_model.add_table(
            EmbeddingTable(name, spec.num_vectors, dim=16, dtype=np.float32, values=values)
        )
    return specs, embedding_model, train, evaluation


def build_store(pipeline, partitioner: str) -> BandanaStore:
    specs, embedding_model, train, _ = pipeline
    config = BandanaConfig(
        total_cache_vectors=1600,
        allocation="uniform",
        partitioner=partitioner,
        shp_iterations=6,
        kmeans_clusters=64,
        mini_cache_sampling_rate=0.25,
        seed=0,
    )
    return BandanaStore.build(
        train,
        config,
        embedding_model=embedding_model,
        num_vectors={n: s.num_vectors for n, s in specs.items()},
    )


class TestFullPipeline:
    def test_shp_store_beats_baseline_and_identity(self, pipeline):
        _, _, _, evaluation = pipeline
        shp_result = simulate_store(build_store(pipeline, "shp"), evaluation)
        identity_result = simulate_store(build_store(pipeline, "identity"), evaluation)
        # Bandana's headline: fewer NVM block reads than the baseline policy,
        # and placement matters (SHP beats leaving the table unsorted).
        assert shp_result.bandwidth_increase > 0
        assert shp_result.total_block_reads < identity_result.total_block_reads

    def test_cacheable_table_gains_more_than_random_table(self, pipeline):
        _, _, _, evaluation = pipeline
        result = simulate_store(build_store(pipeline, "shp"), evaluation)
        gains = {name: r.bandwidth_increase for name, r in result.per_table.items()}
        # The paper: tables with low compulsory-miss rates benefit most.
        assert gains["cacheable"] > gains["random"]

    def test_latency_improves_with_effective_bandwidth(self, pipeline):
        """Figure 5's consequence: at the same application load, a higher
        effective bandwidth keeps the device further from saturation."""
        _, _, _, evaluation = pipeline
        store = build_store(pipeline, "shp")
        result = simulate_store(store, evaluation)
        model = NVMLatencyModel()
        app_mbps = 120.0
        baseline_fraction = 128 / 4096
        bandana_fraction = min(1.0, store.effective_bandwidth().fraction)
        baseline_latency = model.application_latency(app_mbps, baseline_fraction)
        bandana_latency = model.application_latency(app_mbps, bandana_fraction)
        assert bandana_latency.mean_us <= baseline_latency.mean_us
        assert result.total_block_reads > 0

    def test_retraining_stays_within_endurance(self, pipeline):
        specs, _, _, _ = pipeline
        store = build_store(pipeline, "identity")
        # Rewrite every table 20 times (the paper's upper retraining rate)
        # over one simulated day and check the endurance budget holds.
        for state in store.tables.values():
            for _ in range(20):
                for block in range(state.device.num_blocks):
                    state.device.write_block(block)
            state.device.endurance.advance_time(1.0)
        assert all(s.device.endurance.within_budget for s in store.tables.values())
