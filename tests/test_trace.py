"""Unit and property tests for the Trace / ModelTrace containers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.trace import ModelTrace, Trace


def make_trace():
    return Trace([[1, 2, 3], [2, 4], [5]], num_vectors=10)


class TestTraceBasics:
    def test_len_and_lookups(self):
        trace = make_trace()
        assert len(trace) == 3
        assert trace.num_lookups == 6
        assert trace.avg_lookups_per_query == pytest.approx(2.0)

    def test_empty_queries_dropped(self):
        trace = Trace([[1, 2], [], [3]], num_vectors=5)
        assert len(trace) == 2

    def test_num_vectors_inferred(self):
        trace = Trace([[7, 3]])
        assert trace.num_vectors == 8

    def test_num_vectors_too_small_rejected(self):
        with pytest.raises(ValueError):
            Trace([[5]], num_vectors=3)

    def test_negative_ids_rejected(self):
        with pytest.raises(ValueError):
            Trace([[-1, 2]])

    def test_unique_vectors_sorted(self):
        trace = make_trace()
        np.testing.assert_array_equal(trace.unique_vectors(), [1, 2, 3, 4, 5])

    def test_flatten_preserves_order(self):
        trace = make_trace()
        np.testing.assert_array_equal(trace.flatten(), [1, 2, 3, 2, 4, 5])

    def test_getitem_slice_returns_trace(self):
        trace = make_trace()
        head = trace[:2]
        assert isinstance(head, Trace)
        assert len(head) == 2
        assert head.num_vectors == trace.num_vectors

    def test_equality(self):
        assert make_trace() == make_trace()
        assert make_trace() != Trace([[1]], num_vectors=10)

    def test_empty_trace(self):
        trace = Trace([], num_vectors=4)
        assert trace.num_lookups == 0
        assert trace.avg_lookups_per_query == pytest.approx(0.0)
        assert trace.flatten().size == 0
        assert trace.unique_vectors().size == 0


class TestTraceSplitting:
    def test_split_fraction(self):
        trace = make_trace()
        head, tail = trace.split(2 / 3)
        assert len(head) == 2 and len(tail) == 1
        assert head.num_vectors == tail.num_vectors == trace.num_vectors

    def test_split_bounds(self):
        trace = make_trace()
        head, tail = trace.split(0.0)
        assert len(head) == 0 and len(tail) == 3
        head, tail = trace.split(1.0)
        assert len(head) == 3 and len(tail) == 0

    def test_head(self):
        assert len(make_trace().head(1)) == 1

    def test_concat(self):
        joined = make_trace().concat(make_trace())
        assert len(joined) == 6
        assert joined.num_lookups == 12


class TestTraceSerialization:
    def test_save_load_roundtrip(self, tmp_path):
        trace = make_trace()
        path = str(tmp_path / "trace.npz")
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded == trace

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            Trace.load(str(tmp_path / "nope.npz"))

    @given(
        queries=st.lists(
            st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=8),
            min_size=0,
            max_size=12,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, queries, tmp_path_factory):
        trace = Trace(queries, num_vectors=51)
        path = str(tmp_path_factory.mktemp("traces") / "t.npz")
        trace.save(path)
        assert Trace.load(path) == trace


class TestModelTrace:
    def make(self):
        return ModelTrace(
            {
                "a": Trace([[1, 2], [3]], num_vectors=10),
                "b": Trace([[0], [1], [2]], num_vectors=5),
            }
        )

    def test_total_lookups_and_shares(self):
        model = self.make()
        assert model.total_lookups == 6
        shares = model.lookup_shares()
        assert shares["a"] == pytest.approx(0.5)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_contains_and_getitem(self):
        model = self.make()
        assert "a" in model and "c" not in model
        assert model["b"].num_lookups == 3

    def test_split(self):
        heads, tails = self.make().split(0.5)
        assert len(heads["a"]) == 1 and len(tails["a"]) == 1

    def test_save_load_roundtrip(self, tmp_path):
        model = self.make()
        model.save(str(tmp_path))
        loaded = ModelTrace.load(str(tmp_path))
        assert set(loaded.tables) == {"a", "b"}
        assert loaded["a"] == model["a"]
