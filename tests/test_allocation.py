"""Tests for the DRAM-budget allocation across tables."""

import numpy as np
import pytest

from repro.caching.allocation import allocate_dram_budget
from repro.caching.stack_distance import HitRateCurve


def make_curve(max_hit_rate: float, saturation: int, total_lookups: int) -> HitRateCurve:
    sizes = np.array([0, saturation // 2, saturation, saturation * 4])
    rates = np.array([0.0, 0.7 * max_hit_rate, max_hit_rate, max_hit_rate])
    return HitRateCurve(sizes, rates, total_lookups=total_lookups)


class TestAllocateDramBudget:
    def test_budget_respected(self):
        curves = {
            "a": make_curve(0.8, 1000, 100_000),
            "b": make_curve(0.5, 1000, 50_000),
        }
        allocation = allocate_dram_budget(curves, total_vectors=1500, chunk_vectors=100)
        assert sum(allocation.values()) <= 1500
        assert set(allocation) == {"a", "b"}

    def test_hotter_table_gets_more(self):
        # Table "hot" serves 10x the lookups with the same curve shape, so the
        # greedy allocation must favour it.
        curves = {
            "hot": make_curve(0.8, 1000, 1_000_000),
            "cold": make_curve(0.8, 1000, 100_000),
        }
        allocation = allocate_dram_budget(curves, total_vectors=1200, chunk_vectors=50)
        assert allocation["hot"] > allocation["cold"]

    def test_min_per_table(self):
        curves = {"a": make_curve(0.9, 100, 1000), "b": make_curve(0.1, 100, 10)}
        allocation = allocate_dram_budget(
            curves, total_vectors=400, chunk_vectors=50, min_per_table=100
        )
        assert allocation["b"] >= 100

    def test_min_per_table_exceeding_budget_rejected(self):
        curves = {"a": make_curve(0.5, 10, 10), "b": make_curve(0.5, 10, 10)}
        with pytest.raises(ValueError):
            allocate_dram_budget(curves, total_vectors=100, min_per_table=80)

    def test_saturated_curves_spread_remainder(self):
        curves = {"a": make_curve(0.0, 10, 0), "b": make_curve(0.0, 10, 0)}
        allocation = allocate_dram_budget(curves, total_vectors=100, chunk_vectors=10)
        assert sum(allocation.values()) <= 100

    def test_empty_curves_rejected(self):
        with pytest.raises(ValueError):
            allocate_dram_budget({}, total_vectors=10)

    def test_matches_exhaustive_two_table_optimum(self):
        """Greedy allocation on convex curves should match brute force."""
        curves = {
            "a": HitRateCurve(np.array([0, 100, 200, 400]), np.array([0, 0.5, 0.7, 0.8]), 10_000),
            "b": HitRateCurve(np.array([0, 100, 200, 400]), np.array([0, 0.3, 0.5, 0.6]), 20_000),
        }
        budget, chunk = 400, 50
        allocation = allocate_dram_budget(curves, total_vectors=budget, chunk_vectors=chunk)
        greedy_hits = sum(curves[n].hits_at(v) for n, v in allocation.items())
        best_hits = max(
            curves["a"].hits_at(x) + curves["b"].hits_at(budget - x)
            for x in range(0, budget + 1, chunk)
        )
        assert greedy_hits >= best_hits - 1e-6
