"""Tests for the Bandana configuration and metric containers."""

import pytest

from repro.caching.replay import ReplayStats
from repro.core.config import BandanaConfig, ClusterConfig, ServingConfig, TableCacheConfig
from repro.core.metrics import CacheStats, EffectiveBandwidth, LatencyStats
from repro.nvm.latency import NVMLatencyModel


class TestBandanaConfig:
    def test_defaults_match_paper_geometry(self):
        config = BandanaConfig()
        assert config.vector_bytes == 128
        assert config.block_bytes == 4096
        assert config.vectors_per_block == 32
        assert config.partitioner == "shp"

    def test_block_must_be_multiple_of_vector(self):
        with pytest.raises(ValueError):
            BandanaConfig(vector_bytes=100, block_bytes=4096)

    def test_unknown_partitioner_rejected(self):
        with pytest.raises(ValueError):
            BandanaConfig(partitioner="magic")

    def test_unknown_allocation_rejected(self):
        with pytest.raises(ValueError):
            BandanaConfig(allocation="fair")

    def test_empty_thresholds_rejected(self):
        with pytest.raises(ValueError):
            BandanaConfig(candidate_thresholds=())

    def test_vector_size_sweep(self):
        # Figure 16 changes the vector size; vectors_per_block must follow.
        assert BandanaConfig(vector_bytes=64).vectors_per_block == 64
        assert BandanaConfig(vector_bytes=256).vectors_per_block == 16

    def test_table_cache_config_validation(self):
        TableCacheConfig(cache_size_vectors=0, threshold=None)
        with pytest.raises(ValueError):
            TableCacheConfig(cache_size_vectors=-1)
        with pytest.raises(ValueError):
            TableCacheConfig(cache_size_vectors=1, threshold=-2)


class TestCacheStats:
    def test_from_replay(self):
        replay = ReplayStats(lookups=10, hits=7, misses=3, prefetch_admitted=4, prefetch_hits=2)
        stats = CacheStats.from_replay(replay)
        assert stats.hit_rate == pytest.approx(0.7)
        assert stats.prefetch_accuracy == pytest.approx(0.5)
        assert stats.block_reads == 3

    def test_zero_lookups(self):
        stats = CacheStats(0, 0, 0, 0, 0, 0, 0)
        assert stats.hit_rate == pytest.approx(0.0)
        assert stats.prefetch_accuracy == pytest.approx(0.0)


class TestEffectiveBandwidth:
    def test_fraction(self):
        bandwidth = EffectiveBandwidth(app_bytes=128, nvm_bytes=4096)
        assert bandwidth.fraction == pytest.approx(128 / 4096)

    def test_increase_over_baseline(self):
        baseline = EffectiveBandwidth(app_bytes=1000, nvm_bytes=4000)
        candidate = EffectiveBandwidth(app_bytes=1000, nvm_bytes=2000)
        assert candidate.increase_over(baseline) == pytest.approx(1.0)

    def test_zero_nvm_bytes(self):
        assert EffectiveBandwidth(10, 0).fraction == pytest.approx(0.0)

    def test_from_replay(self):
        replay = ReplayStats(vector_bytes=128, block_bytes=4096, lookups=10, misses=2)
        bandwidth = EffectiveBandwidth.from_replay(replay)
        assert bandwidth.app_bytes == 1280
        assert bandwidth.nvm_bytes == 8192


class TestLatencyStats:
    def test_unloaded(self):
        stats = LatencyStats.from_block_reads(100, queue_depth=4)
        model = NVMLatencyModel()
        assert stats.mean_us == pytest.approx(model.mean_latency_us(4))
        assert stats.total_us == pytest.approx(100 * stats.mean_us)

    def test_loaded_latency_higher(self):
        model = NVMLatencyModel()
        unloaded = LatencyStats.from_block_reads(10, model)
        loaded = LatencyStats.from_block_reads(
            10, model, device_throughput_mbps=0.95 * model.bandwidth_gbps(8) * 1000
        )
        assert loaded.mean_us > unloaded.mean_us


class TestConfigKnobValidation:
    """The worker/chunk/serving/cluster knobs fail loudly at construction."""

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_workers": 0},
            {"chunk_requests": 0},
            {"vector_bytes": 0},
        ],
    )
    def test_bandana_rejects_non_positive_counts(self, kwargs):
        with pytest.raises(ValueError, match=next(iter(kwargs))):
            BandanaConfig(**kwargs)

    @pytest.mark.parametrize("kwargs", [{"num_workers": 2.5}, {"chunk_requests": True}])
    def test_bandana_rejects_non_integer_counts(self, kwargs):
        with pytest.raises(TypeError, match=next(iter(kwargs))):
            BandanaConfig(**kwargs)

    def test_serving_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="slo_latency_us"):
            ServingConfig(slo_latency_us=0.0)
        with pytest.raises(ValueError, match="max_batch_requests"):
            ServingConfig(max_batch_requests=0)
        with pytest.raises(TypeError, match="max_batch_requests"):
            ServingConfig(max_batch_requests=4.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_nodes": 0},
            {"replication": 0},
            {"virtual_nodes": 0},
            {"max_attempts": 0},
            {"default_slo_us": 0.0},
            {"shard_timeout_us": 0.0},
            {"hedge_quantile": 1.5},
            {"admission_queue_slack": -1.0},
        ],
    )
    def test_cluster_rejects_bad_knobs(self, kwargs):
        with pytest.raises((ValueError, TypeError), match=next(iter(kwargs))):
            ClusterConfig(**kwargs)

    def test_cluster_rejects_non_positive_table_slo(self):
        with pytest.raises(ValueError, match="table_slo_us"):
            ClusterConfig(table_slo_us=(("t", 0.0),))

    def test_cluster_table_slo_lookup(self):
        config = ClusterConfig(default_slo_us=900.0, table_slo_us=(("hot", 100.0),))
        assert config.slo_us("hot") == pytest.approx(100.0)
        assert config.slo_us("cold") == pytest.approx(900.0)

    def test_bandana_carries_cluster_config(self):
        config = BandanaConfig(cluster=ClusterConfig(num_nodes=8, replication=3))
        assert config.cluster.num_nodes == 8
        assert config.cluster.replication == 3
