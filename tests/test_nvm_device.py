"""Tests for the simulated NVM device, latency model, endurance and DRAM model."""

import numpy as np
import pytest

from repro.nvm.device import NVMDevice
from repro.nvm.dram import DRAMModel
from repro.nvm.endurance import EnduranceTracker
from repro.nvm.latency import NVMLatencyModel


class TestLatencyModel:
    def test_bandwidth_increases_with_queue_depth(self):
        model = NVMLatencyModel()
        bandwidths = [model.bandwidth_gbps(qd) for qd in (1, 2, 4, 8)]
        assert all(b2 > b1 for b1, b2 in zip(bandwidths, bandwidths[1:]))
        assert bandwidths[-1] < model.max_bandwidth_gbps

    def test_latency_increases_with_queue_depth(self):
        model = NVMLatencyModel()
        assert model.mean_latency_us(8) > model.mean_latency_us(1)
        assert model.p99_latency_us(8) > model.mean_latency_us(8)

    def test_paper_figure2_magnitudes(self):
        # Figure 2: ~2.3 GB/s saturated bandwidth, ~10 µs unloaded latency.
        model = NVMLatencyModel()
        assert 1.5 < model.bandwidth_gbps(8) < 2.3
        assert 5 < model.mean_latency_us(1) < 20

    def test_loaded_latency_spikes_near_saturation(self):
        model = NVMLatencyModel()
        capacity = model.bandwidth_gbps(8) * 1000
        low = model.loaded_latency(0.1 * capacity)
        high = model.loaded_latency(0.97 * capacity)
        saturated = model.loaded_latency(1.5 * capacity)
        assert high.mean_us > 2 * low.mean_us
        assert saturated.mean_us > high.mean_us

    def test_application_latency_baseline_vs_full_effective_bw(self):
        # Figure 5: at the same application throughput, the 3% effective
        # bandwidth baseline saturates while 100% effective bandwidth is fine.
        model = NVMLatencyModel()
        app_mbps = 200.0
        baseline = model.application_latency(app_mbps, 128 / 4096)
        full = model.application_latency(app_mbps, 1.0)
        assert baseline.mean_us > 5 * full.mean_us

    def test_invalid_inputs(self):
        model = NVMLatencyModel()
        with pytest.raises(ValueError):
            model.bandwidth_gbps(-1)
        with pytest.raises(ValueError):
            model.mean_latency_us(float("nan"))
        with pytest.raises(ValueError):
            model.loaded_latency(-1)
        with pytest.raises(ValueError):
            model.application_latency(100, 0.0)

    def test_queue_depth_below_one_clamps_to_one(self):
        # An idle closed-loop observer legitimately reports queue depth 0;
        # the model treats anything in [0, 1) as depth 1.
        model = NVMLatencyModel()
        for qd in (0, 0.25):
            assert model.bandwidth_gbps(qd) == model.bandwidth_gbps(1)
            assert model.mean_latency_us(qd) == model.mean_latency_us(1)
            assert model.p99_latency_us(qd) == model.p99_latency_us(1)

    def test_loaded_latency_clamped_and_monotone_through_saturation(self):
        model = NVMLatencyModel()
        capacity = model.bandwidth_gbps(8) * 1000
        ceiling = model.mean_latency_us(8) * model.saturation_ceiling
        sweep = [model.loaded_latency(u * capacity) for u in
                 (0.0, 0.5, 0.9, 0.99, 0.9999, 1.0, 2.0)]
        means = [lat.mean_us for lat in sweep]
        assert means == sorted(means)
        assert all(m <= ceiling for m in means)
        assert means[-1] == means[-2] == ceiling

    def test_blocks_per_second(self):
        model = NVMLatencyModel()
        assert model.blocks_per_second(8) == pytest.approx(
            model.bandwidth_gbps(8) * 1e9 / 4096
        )


class TestNVMDevice:
    def test_read_counts_and_latency(self):
        device = NVMDevice(num_blocks=10, block_bytes=4096)
        result = device.read_block(3)
        assert result.block_id == 3
        assert result.latency_us > 0
        assert device.blocks_read == 1
        assert device.bytes_read == 4096
        assert device.mean_read_latency_us == pytest.approx(result.latency_us)

    def test_read_blocks_batch_latency(self):
        device = NVMDevice(num_blocks=100)
        latency = device.read_blocks(list(range(16)), queue_depth=8)
        assert device.blocks_read == 16
        # 16 reads at queue depth 8 = 2 serial rounds.
        assert latency == pytest.approx(2 * device.latency_model.mean_latency_us(8))

    def test_write_and_payload_roundtrip(self):
        device = NVMDevice(num_blocks=4, block_bytes=64)
        payload = np.arange(16, dtype=np.float32)
        device.write_block(1, payload)
        np.testing.assert_array_equal(device.read_block(1).data, payload)
        assert device.blocks_written == 1
        assert device.endurance.bytes_written == 64

    def test_oversized_payload_rejected(self):
        device = NVMDevice(num_blocks=4, block_bytes=64)
        with pytest.raises(ValueError):
            device.write_block(0, np.zeros(1000, dtype=np.float64))

    def test_out_of_range_block_rejected(self):
        device = NVMDevice(num_blocks=4)
        with pytest.raises(IndexError):
            device.read_block(4)
        with pytest.raises(IndexError):
            device.write_block(-1)

    def test_per_block_tracking(self):
        device = NVMDevice(num_blocks=4, track_per_block_reads=True)
        device.read_block(2)
        device.read_block(2)
        assert device.per_block_reads.tolist() == [0, 0, 2, 0]

    def test_reset_counters_keeps_endurance(self):
        device = NVMDevice(num_blocks=4)
        device.write_block(0)
        device.read_block(0)
        device.reset_counters()
        assert device.blocks_read == 0
        assert device.endurance.bytes_written == 4096

    def test_write_all_blocks(self):
        device = NVMDevice(num_blocks=8, block_bytes=128)
        device.write_all_blocks()
        assert device.endurance.device_writes == pytest.approx(1.0)


class TestEnduranceTracker:
    def test_dwpd_accounting(self):
        tracker = EnduranceTracker(capacity_bytes=1000, dwpd_limit=30)
        tracker.record_write(15_000)   # 15 device writes
        tracker.advance_time(1.0)
        assert tracker.device_writes == pytest.approx(15.0)
        assert tracker.drive_writes_per_day == pytest.approx(15.0)
        assert tracker.within_budget
        assert tracker.headroom() == pytest.approx(15.0)

    def test_budget_violation(self):
        tracker = EnduranceTracker(capacity_bytes=1000, dwpd_limit=10)
        tracker.record_write(20_000)
        tracker.advance_time(1.0)
        assert not tracker.within_budget

    def test_no_time_means_no_violation(self):
        tracker = EnduranceTracker(capacity_bytes=1000)
        tracker.record_write(10**9)
        assert tracker.drive_writes_per_day == pytest.approx(0.0)
        assert tracker.within_budget

    def test_reset(self):
        tracker = EnduranceTracker(capacity_bytes=1000)
        tracker.record_write(500)
        tracker.advance_time(2)
        tracker.reset()
        assert tracker.bytes_written == 0 and tracker.elapsed_days == 0

    def test_paper_retraining_rate_within_endurance(self):
        # The paper: tables are rewritten 10-20 times/day, device allows 30.
        tracker = EnduranceTracker(capacity_bytes=375 * 10**9, dwpd_limit=30)
        tracker.record_write(20 * 375 * 10**9)
        tracker.advance_time(1.0)
        assert tracker.within_budget


class TestDRAMModel:
    def test_cost_monotone_in_dram(self):
        dram = DRAMModel()
        assert dram.cost(2 * 1024**3) > dram.cost(1024**3)

    def test_bandana_saves_cost(self):
        dram = DRAMModel()
        total = 100 * 1024**3
        saving = dram.savings_vs_all_dram(total, dram_cache_bytes=total // 20)
        assert 0.5 < saving < 1.0

    def test_cache_larger_than_total_rejected(self):
        dram = DRAMModel()
        with pytest.raises(ValueError):
            dram.savings_vs_all_dram(10, 20)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            DRAMModel().cost(-1)
