"""Unit and property tests for the sampling primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.sampling import (
    sample_queries_spatially,
    spatial_hash_sample_mask,
    zipf_probabilities,
)


class TestSpatialHashSampleMask:
    def test_rate_zero_and_one(self):
        ids = np.arange(100)
        assert not spatial_hash_sample_mask(ids, 0.0).any()
        assert spatial_hash_sample_mask(ids, 1.0).all()

    def test_deterministic_per_id(self):
        ids = np.arange(1000)
        mask_a = spatial_hash_sample_mask(ids, 0.3, seed=5)
        mask_b = spatial_hash_sample_mask(ids, 0.3, seed=5)
        np.testing.assert_array_equal(mask_a, mask_b)

    def test_decision_independent_of_position(self):
        # The same id must receive the same decision regardless of the array
        # it appears in — the spatial-sampling property miniature caches need.
        single = spatial_hash_sample_mask(np.array([42]), 0.5, seed=1)[0]
        in_context = spatial_hash_sample_mask(np.arange(100), 0.5, seed=1)[42]
        assert single == in_context

    def test_seed_changes_sample(self):
        ids = np.arange(5000)
        mask_a = spatial_hash_sample_mask(ids, 0.5, seed=0)
        mask_b = spatial_hash_sample_mask(ids, 0.5, seed=1)
        assert (mask_a != mask_b).any()

    def test_rate_approximately_respected(self):
        ids = np.arange(20000)
        mask = spatial_hash_sample_mask(ids, 0.2, seed=0)
        assert 0.17 < mask.mean() < 0.23

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            spatial_hash_sample_mask(np.arange(10), 1.5)

    @given(rate=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=25, deadline=None)
    def test_mask_fraction_within_bounds(self, rate):
        ids = np.arange(2000)
        mask = spatial_hash_sample_mask(ids, rate, seed=3)
        assert 0.0 <= mask.mean() <= 1.0


class TestSampleQueriesSpatially:
    def test_empty_queries_dropped(self):
        queries = [np.array([1, 2, 3]), np.array([1000000])]
        sampled = sample_queries_spatially(queries, 0.001, seed=0)
        assert all(q.size > 0 for q in sampled)

    def test_full_rate_keeps_everything(self):
        queries = [np.array([1, 2, 3]), np.array([4, 5])]
        sampled = sample_queries_spatially(queries, 1.0)
        assert len(sampled) == 2
        np.testing.assert_array_equal(sampled[0], queries[0])

    def test_subset_of_original(self):
        queries = [np.arange(100), np.arange(50, 150)]
        sampled = sample_queries_spatially(queries, 0.3, seed=2)
        for original, kept in zip(queries, sampled):
            assert set(kept.tolist()) <= set(original.tolist())


class TestZipfProbabilities:
    def test_sums_to_one(self):
        probs = zipf_probabilities(1000, 0.8)
        assert probs.sum() == pytest.approx(1.0)

    def test_alpha_zero_is_uniform(self):
        probs = zipf_probabilities(10, 0.0)
        np.testing.assert_allclose(probs, 0.1)

    def test_monotone_decreasing(self):
        probs = zipf_probabilities(100, 1.2)
        assert (np.diff(probs) <= 0).all()

    def test_higher_alpha_more_concentrated(self):
        light = zipf_probabilities(1000, 0.5)
        heavy = zipf_probabilities(1000, 2.0)
        assert heavy[0] > light[0]

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            zipf_probabilities(10, -0.5)
