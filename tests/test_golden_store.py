"""Golden regression test: frozen counters of a seeded placement study.

A small two-table placement-study store (SHP placement, unlimited caches,
cache-all-block prefetch — the configuration behind the paper's store-wide
placement numbers) is built from fixed seeds and replayed; every counter the
replay produces is pinned to the values frozen below.  Any silent drift in
the trace generator, the SHP partitioner, the replay engine or the store
plumbing fails tier-1 here — and because the goldens are asserted for the
table-sequential *and* the interleaved sharded schedule, so does any
divergence between the two replay paths.

If a change intentionally alters replay semantics, re-derive the goldens by
running the builder below and update the frozen values in the same commit,
explaining why the numbers moved.
"""

import numpy as np
import pytest

from repro.caching.lru import LRUCache
from repro.caching.policies import CacheAllBlockPolicy
from repro.caching.replay import ReplayStats
from repro.core.bandana import BandanaStore, BandanaTableState
from repro.core.config import BandanaConfig, TableCacheConfig
from repro.nvm.device import NVMDevice
from repro.partitioning import SHPPartitioner
from repro.simulation import simulate_store
from repro.workloads import SyntheticTraceGenerator, TableSpec
from repro.workloads.trace import ModelTrace

VECTORS_PER_BLOCK = 32

SPECS = {
    "alpha": TableSpec(
        name="alpha",
        num_vectors=2048,
        avg_lookups_per_query=16.0,
        lookup_share=0.6,
        compulsory_miss_rate=0.1,
        popularity_alpha=0.9,
        num_topics=32,
    ),
    "beta": TableSpec(
        name="beta",
        num_vectors=1024,
        avg_lookups_per_query=8.0,
        lookup_share=0.4,
        compulsory_miss_rate=0.3,
        popularity_alpha=0.8,
        num_topics=32,
    ),
}

#: Frozen candidate counters per table:
#: (lookups, hits, misses, prefetch_admitted, prefetch_hits,
#:  prefetch_evicted_unused, evictions)
GOLDEN_CANDIDATE = {
    "alpha": (3538, 3474, 64, 1984, 391, 0, 0),
    "beta": (3775, 3743, 32, 992, 769, 0, 0),
}

#: Frozen no-prefetch baseline counters per table: (lookups, hits, misses).
GOLDEN_BASELINE = {
    "alpha": (3538, 3083, 455),
    "beta": (3775, 2974, 801),
}

GOLDEN_TOTAL_BLOCK_READS = 96
GOLDEN_BASELINE_BLOCK_READS = 1256
GOLDEN_AGGREGATE_HIT_RATE = 0.9868726925


def build_golden_store():
    """The frozen workload: fixed seeds end to end, SHP placement."""
    config = BandanaConfig(total_cache_vectors=3072, tune_thresholds=False)
    tables = {}
    evaluation = {}
    for index, (name, spec) in enumerate(SPECS.items()):
        generator = SyntheticTraceGenerator(spec, seed=40 + index, expected_lookups=4000)
        train_trace = generator.generate_lookups(8000)
        eval_trace = generator.generate_lookups(4000)
        shp = SHPPartitioner(
            vectors_per_block=VECTORS_PER_BLOCK, num_iterations=4, seed=0
        )
        layout = shp.partition(spec.num_vectors, trace=train_trace).layout(
            VECTORS_PER_BLOCK
        )
        tables[name] = BandanaTableState(
            name=name,
            layout=layout,
            cache=LRUCache(spec.num_vectors),  # unlimited: placement study
            policy=CacheAllBlockPolicy(),
            device=NVMDevice(num_blocks=layout.num_blocks, block_bytes=4096),
            cache_config=TableCacheConfig(cache_size_vectors=spec.num_vectors),
            access_counts=np.zeros(spec.num_vectors, dtype=np.int64),
            stats=ReplayStats(vector_bytes=128, block_bytes=4096),
        )
        evaluation[name] = eval_trace
    return BandanaStore(config, tables), ModelTrace(evaluation)


def candidate_counters(stats: ReplayStats):
    return stats.counters()


@pytest.mark.parametrize(
    "schedule",
    ["table-sequential", "interleaved-1w", "interleaved-2w"],
)
def test_golden_store_counters(schedule):
    store, eval_trace = build_golden_store()
    if schedule == "table-sequential":
        result = simulate_store(store, eval_trace)
    else:
        workers = int(schedule.rsplit("-", 1)[1][:-1])
        result = simulate_store(
            store, eval_trace, interleaved=True, num_workers=workers
        )
    for name in SPECS:
        table = result.per_table[name]
        assert candidate_counters(table.stats) == GOLDEN_CANDIDATE[name], name
        baseline = table.baseline_stats
        assert (
            baseline.lookups,
            baseline.hits,
            baseline.misses,
        ) == GOLDEN_BASELINE[name], name
    assert result.total_block_reads == GOLDEN_TOTAL_BLOCK_READS
    assert result.total_baseline_block_reads == GOLDEN_BASELINE_BLOCK_READS
    assert result.aggregate_hit_rate == pytest.approx(
        GOLDEN_AGGREGATE_HIT_RATE, abs=1e-9
    )
    # Device accounting must agree with the replay counters.
    assert store.total_blocks_read() == GOLDEN_TOTAL_BLOCK_READS
