"""Tests for the cache replay engine and its statistics."""

import numpy as np
import pytest

from repro.caching.lru import LRUCache
from repro.caching.policies import CacheAllBlockPolicy, NoPrefetchPolicy
from repro.caching.replay import (
    ReplayStats,
    effective_bandwidth_increase,
    replay_table_cache,
)
from repro.nvm.block import BlockLayout
from repro.nvm.device import NVMDevice
from repro.workloads.trace import Trace


class TestReplayBasics:
    def test_every_lookup_counted(self):
        layout = BlockLayout.identity(64, 32)
        queries = [np.array([0, 1, 2]), np.array([0, 40])]
        stats = replay_table_cache(queries, layout, NoPrefetchPolicy(), cache_size=8)
        assert stats.lookups == 5
        assert stats.hits + stats.misses == 5

    def test_no_prefetch_repeated_access_hits(self):
        layout = BlockLayout.identity(64, 32)
        queries = [np.array([3]), np.array([3])]
        stats = replay_table_cache(queries, layout, NoPrefetchPolicy(), cache_size=4)
        assert stats.misses == 1 and stats.hits == 1
        assert stats.block_reads == 1

    def test_prefetch_turns_neighbour_into_hit(self):
        layout = BlockLayout.identity(64, 32)
        queries = [np.array([0]), np.array([1])]   # same block
        # The cache must be able to hold a whole block for the prefetch to
        # survive; with a smaller cache the 31 prefetched neighbours evict one
        # another (which is exactly the pathology of Figure 10).
        no_prefetch = replay_table_cache(queries, layout, NoPrefetchPolicy(), cache_size=64)
        prefetch = replay_table_cache(queries, layout, CacheAllBlockPolicy(), cache_size=64)
        assert no_prefetch.block_reads == 2
        assert prefetch.block_reads == 1
        assert prefetch.prefetch_hits >= 1

    def test_tiny_cache_prefetch_churn(self):
        # With a cache smaller than a block, whole-block prefetching churns:
        # the neighbours evict each other and the second lookup still misses.
        layout = BlockLayout.identity(64, 32)
        queries = [np.array([0]), np.array([1])]
        prefetch = replay_table_cache(queries, layout, CacheAllBlockPolicy(), cache_size=8)
        assert prefetch.block_reads == 2
        assert prefetch.evictions > 0

    def test_unlimited_cache_reads_each_block_once(self):
        layout = BlockLayout.identity(64, 32)
        queries = [np.array([0, 1, 33]), np.array([2, 34])]
        stats = replay_table_cache(queries, layout, CacheAllBlockPolicy(), cache_size=None)
        assert stats.block_reads == 2  # blocks 0 and 1

    def test_zero_capacity_cache_always_misses(self):
        layout = BlockLayout.identity(64, 32)
        queries = [np.array([0]), np.array([0])]
        stats = replay_table_cache(queries, layout, CacheAllBlockPolicy(), cache_size=0)
        assert stats.misses == 2
        assert stats.prefetch_admitted == 0

    def test_empty_queries_ignored(self):
        layout = BlockLayout.identity(32, 32)
        stats = replay_table_cache(
            [np.array([], dtype=np.int64)], layout, NoPrefetchPolicy(), cache_size=4
        )
        assert stats.lookups == 0

    def test_device_accounting(self):
        layout = BlockLayout.identity(64, 32)
        device = NVMDevice(num_blocks=layout.num_blocks)
        stats = replay_table_cache(
            [np.array([0, 40])], layout, NoPrefetchPolicy(), cache_size=4, device=device
        )
        assert device.blocks_read == stats.block_reads == 2
        assert stats.total_latency_us > 0

    def test_existing_cache_continues(self):
        layout = BlockLayout.identity(64, 32)
        cache = LRUCache(8)
        replay_table_cache([np.array([0])], layout, NoPrefetchPolicy(), cache=cache)
        stats = replay_table_cache([np.array([0])], layout, NoPrefetchPolicy(), cache=cache)
        assert stats.hits == 1 and stats.misses == 0

    def test_stats_accumulate(self):
        layout = BlockLayout.identity(64, 32)
        stats = ReplayStats(vector_bytes=128, block_bytes=4096)
        replay_table_cache([np.array([0])], layout, NoPrefetchPolicy(), cache_size=4, stats=stats)
        replay_table_cache([np.array([40])], layout, NoPrefetchPolicy(), cache_size=4, stats=stats)
        assert stats.lookups == 2

    def test_geometry_mismatch_rejected(self):
        layout = BlockLayout.identity(64, 32)
        stats = ReplayStats(vector_bytes=64, block_bytes=1024)
        with pytest.raises(ValueError):
            replay_table_cache(
                [np.array([0])], layout, NoPrefetchPolicy(), cache_size=4, stats=stats
            )


class TestReplayStatsDerived:
    def test_effective_bandwidth(self):
        stats = ReplayStats(vector_bytes=128, block_bytes=4096, lookups=100, hits=90, misses=10)
        assert stats.app_bytes == 100 * 128
        assert stats.nvm_bytes == 10 * 4096
        assert stats.effective_bandwidth == pytest.approx(12800 / 40960)
        assert stats.hit_rate == pytest.approx(0.9)

    def test_zero_reads(self):
        stats = ReplayStats()
        assert stats.effective_bandwidth == pytest.approx(0.0)
        assert stats.hit_rate == pytest.approx(0.0)

    def test_merge(self):
        a = ReplayStats(lookups=10, hits=5, misses=5)
        b = ReplayStats(lookups=20, hits=10, misses=10)
        merged = a.merge(b)
        assert merged.lookups == 30 and merged.hits == 15

    def test_merge_geometry_mismatch(self):
        with pytest.raises(ValueError):
            ReplayStats(vector_bytes=128).merge(ReplayStats(vector_bytes=64))


class TestEffectiveBandwidthIncrease:
    def test_half_the_reads_is_100_percent(self):
        baseline = ReplayStats(misses=100)
        candidate = ReplayStats(misses=50)
        assert effective_bandwidth_increase(baseline, candidate) == pytest.approx(1.0)

    def test_equal_reads_is_zero(self):
        stats = ReplayStats(misses=10)
        assert effective_bandwidth_increase(stats, stats) == pytest.approx(0.0)

    def test_worse_candidate_is_negative(self):
        assert effective_bandwidth_increase(ReplayStats(misses=10), ReplayStats(misses=20)) < 0

    def test_zero_candidate_reads(self):
        assert effective_bandwidth_increase(ReplayStats(misses=0), ReplayStats(misses=0)) == pytest.approx(0.0)
        assert effective_bandwidth_increase(ReplayStats(misses=5), ReplayStats(misses=0)) == float("inf")
